"""Golden parity: refactors changed no observable output.

Two generations of fixtures are policed here:

* The fixtures under ``tests/golden/`` were recorded on the
  pre-scenario code (hand-wired ``Simulator(...)`` construction in the
  CLI and grid).  Every comparison is bit-for-bit: the declarative
  layer must reproduce the old call sites exactly, including float
  formatting.
* :class:`TestTimebaseParity` holds the tick-lattice timebase to the
  same standard: for every bundled scenario (and the SST setting) the
  integer fast path must produce an execution *indistinguishable* from
  the exact-Fraction path — same events, same delivery instants, same
  channel counters — and components that live off the lattice must
  fall back to Fractions rather than approximate.
"""

import json
import pathlib
from fractions import Fraction

import pytest

from repro.analysis import ExperimentCell, run_grid_report
from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.scenarios import ScenarioSpec, load_spec

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden"
SCENARIOS = pathlib.Path(__file__).resolve().parents[1] / "scenarios"


def _golden(name: str) -> str:
    return (GOLDEN / name).read_text(encoding="utf-8")


class TestCliGolden:
    def test_ca_arrow_worst_byte_identical(self, capsys):
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "4", "--max-slot", "2",
             "--rho", "1/2", "--horizon", "2000", "--schedule", "worst",
             "--seed", "0"]
        )
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_ca_arrow_worst.txt")

    def test_abs_election_worst_byte_identical(self, capsys):
        """The bundled ABS scenario under the (auto-promoted) batch
        engine reproduces the object-loop golden bytes."""
        code = main(
            ["scenario", "run", str(SCENARIOS / "abs_election_worst.json")]
        )
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_abs_election_worst.txt")

    def test_aloha_random_byte_identical(self, capsys):
        code = main(
            ["run", "--algorithm", "aloha", "--n", "4", "--max-slot", "2",
             "--rho", "1/2", "--horizon", "2000", "--schedule", "random",
             "--seed", "3"]
        )
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_aloha_random.txt")

    def test_scenario_run_matches_run_flags(self, tmp_path, capsys):
        """`repro scenario run <spec>` == `repro run <equivalent flags>`,
        byte for byte (the ISSUE's headline acceptance criterion)."""
        spec = ScenarioSpec(
            algorithm="ca-arrow", n=4, max_slot=2, schedule="worst",
            rho="1/2", horizon=2000, seed=0,
        )
        path = tmp_path / "ca.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code = main(["scenario", "run", str(path)])
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_ca_arrow_worst.txt")


def _fingerprint(sim):
    """Every public observable of one finished run, as one comparable value.

    ``drain_all`` first: in-flight transmissions finalize at different
    internal instants on the two timebases, and parity is only promised
    at the observation boundary.
    """
    sim.channel.drain_all(sim.now)
    stats = sim.channel.stats
    return (
        sim.events_processed,
        sim.now,
        sim.total_backlog,
        sim.trace.max_backlog,
        tuple(
            (p.packet_id, p.station_id, p.arrival_time, p.delivered_time, p.cost)
            for p in sim.delivered_packets
        ),
        (stats.transmissions, stats.successes, stats.collisions,
         stats.control_transmissions, stats.busy_time, stats.success_time),
    )


class TestTimebaseParity:
    """S4: the tick-lattice fast path is observably invisible."""

    @pytest.mark.parametrize(
        "path", sorted(SCENARIOS.glob("*.json")), ids=lambda p: p.stem
    )
    def test_bundled_scenarios_bit_identical(self, path):
        spec = load_spec(path).replace(horizon=600)
        runs = {}
        for requested in ("fraction", "lattice"):
            sim = spec.build(timebase=requested)
            assert sim.timebase.is_lattice is (requested == "lattice")
            sim.run(until_time=spec.horizon)
            runs[requested] = _fingerprint(sim)
        assert runs["fraction"] == runs["lattice"]
        # Exactness, not floats: delivery times stay Fractions (or ints
        # equal to them) after the boundary conversion.
        for entry in runs["lattice"][4]:
            assert isinstance(entry[3], (int, Fraction))

    def test_sst_election_bit_identical(self):
        spec = ScenarioSpec(algorithm="abs", n=16, max_slot=2, schedule="worst")
        outcomes = {}
        for requested in ("fraction", "lattice"):
            sim = spec.build(timebase=requested)
            end = sim.run_until_success(max_events=1_000_000)
            outcomes[requested] = (end, sim.max_slots_elapsed(), _fingerprint(sim))
        assert outcomes["fraction"] == outcomes["lattice"]
        assert outcomes["lattice"][0] is not None

    def test_auto_detects_lattice_on_bundled_scenarios(self):
        for path in sorted(SCENARIOS.glob("*.json")):
            sim = load_spec(path).build()  # timebase="auto"
            assert sim.timebase.is_lattice, path.stem

    def test_cli_golden_identical_under_forced_fraction(self, capsys):
        """The recorded golden bytes don't depend on the timebase."""
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "4", "--max-slot", "2",
             "--rho", "1/2", "--horizon", "2000", "--schedule", "worst",
             "--seed", "0", "--timebase", "fraction"]
        )
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_ca_arrow_worst.txt")


class TestEngineParity:
    """PR 8: the vectorized batch engine is held to the same standard
    as the tick lattice — observably invisible.  (The deeper kernel
    contract — heap/runtime/history equality, chunking, continuation —
    lives in ``test_batch.py``; here the bundled scenarios and the
    golden bytes are pinned.)"""

    ELIGIBLE = {
        "abs_election_worst",
        "aloha_random",
        "ao_arrow_worst",
        "ca_arrow_worst",
        "mbtf_sync",
        "rrw_sync",
        "tdma_sync",
    }

    @pytest.mark.parametrize(
        "path", sorted(SCENARIOS.glob("*.json")), ids=lambda p: p.stem
    )
    def test_bundled_scenarios_bit_identical_or_demoted(self, path):
        pytest.importorskip("numpy")
        spec = load_spec(path).replace(horizon=600)
        auto = spec.build()
        if path.stem not in self.ELIGIBLE:
            assert auto.engine == "object"
            assert auto.engine_detail  # names its blocker
            return
        assert auto.engine == "batch"
        runs = {}
        for requested in ("object", "batch"):
            sim = spec.build(engine=requested)
            assert sim.engine == requested
            sim.run(until_time=spec.horizon)
            runs[requested] = _fingerprint(sim)
        assert runs["object"] == runs["batch"]
        for entry in runs["batch"][4]:
            assert isinstance(entry[3], (int, Fraction))

    def test_cli_golden_identical_under_forced_object(self, capsys):
        """The recorded golden bytes don't depend on the engine."""
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "4", "--max-slot", "2",
             "--rho", "1/2", "--horizon", "2000", "--schedule", "worst",
             "--seed", "0", "--engine", "object"]
        )
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_ca_arrow_worst.txt")

    def test_abs_golden_identical_under_forced_engines(self, capsys):
        """The ABS golden bytes don't depend on the engine either way."""
        pytest.importorskip("numpy")
        for engine in ("object", "batch"):
            code = main(
                ["scenario", "run",
                 str(SCENARIOS / "abs_election_worst.json"),
                 "--engine", engine]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert out == _golden("cli_abs_election_worst.txt"), engine


class TestOffLatticeFallback:
    """Components without a declared lattice demote the run to Fractions."""

    def test_adaptive_adversary_falls_back(self):
        from repro.algorithms import CAArrow
        from repro.core import Simulator
        from repro.timing import Adaptive

        adversary = Adaptive(lambda sim, sid, idx: Fraction(3, 2))
        sim = Simulator(
            {i: CAArrow(i, 3, Fraction(2)) for i in range(1, 4)},
            adversary, max_slot_length=2,
        )
        assert sim.timebase.is_lattice is False
        with pytest.raises(ConfigurationError, match="Adaptive"):
            Simulator(
                {i: CAArrow(i, 3, Fraction(2)) for i in range(1, 4)},
                adversary, max_slot_length=2, timebase="lattice",
            )

    def test_lookahead_adversaries_fall_back_and_still_force_collisions(self):
        """Off-lattice mirror/cloning adversaries run correctly on the
        Fraction path (their theorem-level guarantees are exercised in
        test_collision_forcer / test_mirror_lowerbound; here we pin the
        timebase demotion itself)."""
        from repro.algorithms import CAArrow
        from repro.core import Simulator
        from repro.timing import CloningGreedyAdversary, MaxOverlapAdversary

        for adversary in (
            MaxOverlapAdversary(Fraction(2)),
            CloningGreedyAdversary(Fraction(2)),
        ):
            sim = Simulator(
                {i: CAArrow(i, 3, Fraction(2)) for i in range(1, 4)},
                adversary, max_slot_length=2,
            )
            assert sim.timebase.is_lattice is False
            sim.run(until_time=50)
            assert sim.events_processed > 0

    def test_off_lattice_source_falls_back(self):
        spec = ScenarioSpec(
            algorithm="ca-arrow", n=4, max_slot=2, schedule="worst",
            rho="1/2", source={"name": "poisson"}, horizon=200,
        )
        sim = spec.build()
        assert sim.timebase.is_lattice is False
        with pytest.raises(ConfigurationError, match="[Pp]oisson"):
            spec.build(timebase="lattice")


class TestGridGolden:
    def test_grid_rows_identical(self):
        rows_expected = json.loads(_golden("grid_rows.json"))
        cells = []
        for algorithm, schedule, seed in (
            ("ca-arrow", "worst", 0), ("aloha", "random", 3)
        ):
            spec = ScenarioSpec(
                algorithm=algorithm, n=4, max_slot=2, schedule=schedule,
                rho="1/2", horizon=2000, seed=seed,
                labels={"algorithm": algorithm, "rho": "1/2",
                        "schedule": schedule},
            )
            cells.append(ExperimentCell.from_spec(spec))
        report = run_grid_report(cells, backlog_stride=8)
        rows = [result.as_row() for result in report.results]
        assert json.loads(json.dumps(rows)) == rows_expected


class TestServiceRouting:
    """The CLI is a transport: every run path goes through repro.service.

    The golden fixtures above pin *what* is printed; these tests pin
    *how* it was produced — if a subcommand regrows a private engine
    drive, the execute() spy stops seeing it and the test fails.
    """

    @pytest.fixture()
    def spy(self, monkeypatch):
        import repro.cli
        from repro.service import execute as real_execute

        calls = []

        def recording_execute(request, **kwargs):
            calls.append(request)
            return real_execute(request, **kwargs)

        monkeypatch.setattr(repro.cli, "execute", recording_execute)
        return calls

    def test_run_routes_through_service(self, spy, capsys):
        assert main(["run", "--algorithm", "ca-arrow", "--n", "3",
                     "--horizon", "400"]) == 0
        assert [r.command for r in spy] == ["run"]

    def test_scenario_run_routes_through_service(self, spy, capsys):
        assert main(
            ["scenario", "run", str(SCENARIOS / "ca_arrow_worst.json"),
             "--horizon", "400"]
        ) == 0
        assert [r.command for r in spy] == ["run"]

    def test_grid_routes_through_service(self, spy, capsys, tmp_path):
        assert main(["grid", "--algorithms", "ca-arrow", "--rhos", "1/2",
                     "--horizon", "200", "--no-cache"]) == 0
        assert [r.command for r in spy] == ["grid"]
        assert len(spy[0].specs) == 1

    def test_sst_routes_through_service(self, spy, capsys):
        assert main(["sst", "--algorithm", "abs", "--n", "5"]) == 0
        assert [r.command for r in spy] == ["sst"]

    def test_service_grid_report_matches_engine_grid(self):
        """The service-routed grid is row-identical to the raw engine."""
        from repro.service import RunOptions, RunRequest, execute

        spec = ScenarioSpec(
            algorithm="ca-arrow", n=4, max_slot=2, schedule="worst",
            rho="1/2", horizon=2000, seed=0,
            labels={"algorithm": "ca-arrow", "rho": "1/2"},
        )
        engine_report = run_grid_report(
            [ExperimentCell.from_spec(spec)], backlog_stride=8
        )
        service_report = execute(
            RunRequest(specs=(spec,), command="grid",
                       options=RunOptions(backlog_stride=8))
        ).report
        assert [r.as_row() for r in service_report.results] == [
            r.as_row() for r in engine_report.results
        ]
