"""Golden parity: the scenario refactor changed no observable output.

The fixtures under ``tests/golden/`` were recorded on the pre-scenario
code (hand-wired ``Simulator(...)`` construction in the CLI and grid).
Every comparison here is bit-for-bit: the declarative layer must
reproduce the old call sites exactly, including float formatting.
"""

import json
import pathlib

from repro.analysis import ExperimentCell, run_grid_report
from repro.cli import main
from repro.scenarios import ScenarioSpec

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden"


def _golden(name: str) -> str:
    return (GOLDEN / name).read_text(encoding="utf-8")


class TestCliGolden:
    def test_ca_arrow_worst_byte_identical(self, capsys):
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "4", "--max-slot", "2",
             "--rho", "1/2", "--horizon", "2000", "--schedule", "worst",
             "--seed", "0"]
        )
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_ca_arrow_worst.txt")

    def test_aloha_random_byte_identical(self, capsys):
        code = main(
            ["run", "--algorithm", "aloha", "--n", "4", "--max-slot", "2",
             "--rho", "1/2", "--horizon", "2000", "--schedule", "random",
             "--seed", "3"]
        )
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_aloha_random.txt")

    def test_scenario_run_matches_run_flags(self, tmp_path, capsys):
        """`repro scenario run <spec>` == `repro run <equivalent flags>`,
        byte for byte (the ISSUE's headline acceptance criterion)."""
        spec = ScenarioSpec(
            algorithm="ca-arrow", n=4, max_slot=2, schedule="worst",
            rho="1/2", horizon=2000, seed=0,
        )
        path = tmp_path / "ca.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code = main(["scenario", "run", str(path)])
        assert code == 0
        assert capsys.readouterr().out == _golden("cli_ca_arrow_worst.txt")


class TestGridGolden:
    def test_grid_rows_identical(self):
        rows_expected = json.loads(_golden("grid_rows.json"))
        cells = []
        for algorithm, schedule, seed in (
            ("ca-arrow", "worst", 0), ("aloha", "random", 3)
        ):
            spec = ScenarioSpec(
                algorithm=algorithm, n=4, max_slot=2, schedule=schedule,
                rho="1/2", horizon=2000, seed=seed,
                labels={"algorithm": algorithm, "rho": "1/2",
                        "schedule": schedule},
            )
            cells.append(ExperimentCell.from_spec(spec))
        report = run_grid_report(cells, backlog_stride=8)
        rows = [result.as_row() for result in report.results]
        assert json.loads(json.dumps(rows)) == rows_expected
