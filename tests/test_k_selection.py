"""Tests for the k-selection primitive (§VII extension)."""

import pytest

from repro.algorithms.k_selection import KSelection
from repro.analysis import abs_slot_upper_bound
from repro.core import ConfigurationError, Simulator
from repro.timing import (
    PerStationFixed,
    RandomUniform,
    Synchronous,
    worst_case_for,
)


def run_selection(n, k, R, adversary, max_events=3_000_000):
    algos = {i: KSelection(i, k, R) for i in range(1, n + 1)}
    sim = Simulator(algos, adversary, max_slot_length=R)
    sim.run(
        max_events=max_events,
        stop_when=lambda s: all(a.is_done for a in algos.values()),
    )
    return sim, algos


class TestCorrectness:
    def test_k1_degenerates_to_sst(self):
        sim, algos = run_selection(5, 1, 2, worst_case_for(2))
        ranks = [a.rank for a in algos.values() if a.rank is not None]
        assert ranks == [1]

    @pytest.mark.parametrize(
        "n,k,R,adversary",
        [
            (6, 3, 2, worst_case_for(2)),
            (5, 2, 1, Synchronous()),
            (4, 4, 2, PerStationFixed({1: 1, 2: "3/2", 3: 2, 4: "5/4"})),
            (8, 5, 3, worst_case_for(3)),
        ],
    )
    def test_exactly_k_distinct_ranks(self, n, k, R, adversary):
        sim, algos = run_selection(n, k, R, adversary)
        assert all(a.is_done for a in algos.values())
        ranked = {i: a.rank for i, a in algos.items() if a.rank is not None}
        assert sorted(ranked.values()) == list(range(1, k + 1))
        assert len(ranked) == k  # distinct stations

    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedules(self, seed):
        sim, algos = run_selection(6, 3, 2, RandomUniform(2, seed=seed))
        ranked = {i: a.rank for i, a in algos.items() if a.rank is not None}
        assert sorted(ranked.values()) == [1, 2, 3]

    def test_everyone_agrees_on_win_count(self):
        sim, algos = run_selection(6, 3, 2, worst_case_for(2))
        assert {a.wins_observed for a in algos.values()} == {3}

    def test_selecting_everyone(self):
        sim, algos = run_selection(4, 4, 2, worst_case_for(2))
        assert all(a.selected for a in algos.values())


class TestCost:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_within_k_abs_budgets(self, k):
        n, R = 8, 2
        sim, _ = run_selection(n, k, R, worst_case_for(R))
        assert sim.max_slots_elapsed() <= k * abs_slot_upper_bound(n, R) + 8 * k

    def test_cost_grows_with_k(self):
        n, R = 6, 2
        slots = {}
        for k in (1, 3, 5):
            sim, _ = run_selection(n, k, R, worst_case_for(R))
            slots[k] = sim.max_slots_elapsed()
        assert slots[1] < slots[3] < slots[5]


class TestValidation:
    def test_k_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            KSelection(1, 0, 2)

    def test_winner_stops_transmitting(self):
        sim, algos = run_selection(5, 2, 2, worst_case_for(2))
        # The rank-1 station's transmissions all precede rank-2's win.
        first = next(i for i, a in algos.items() if a.rank == 1)
        records = [
            t for t in sim.channel.live_records if t.station_id == first
        ]
        successes = sorted(
            (t.interval.end for t in sim.channel.live_records if t.successful),
        )
        assert len(successes) >= 2
        # No transmission of the first winner after its own success.
        first_win = min(
            t.interval.end
            for t in sim.channel.live_records
            if t.successful and t.station_id == first
        )
        assert all(t.interval.end <= first_win for t in records)
