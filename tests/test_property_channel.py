"""Property-based tests for the channel model (hypothesis).

Invariants straight from Section II:

* success <=> no real-time overlap with any other transmission;
* at most one *transmitter* can receive an ack for any instant in time
  (successful transmissions are pairwise disjoint);
* feedback classification is exhaustive and exclusive.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Channel, make_interval

# Exact rational intervals with bounded denominators, pre-sorted by start.
_times = st.integers(min_value=0, max_value=60).map(lambda k: Fraction(k, 4))
_durations = st.integers(min_value=1, max_value=16).map(lambda k: Fraction(k, 4))


@st.composite
def transmission_sets(draw, max_count=8):
    count = draw(st.integers(min_value=1, max_value=max_count))
    items = []
    for sid in range(1, count + 1):
        start = draw(_times)
        duration = draw(_durations)
        items.append((sid, start, start + duration))
    items.sort(key=lambda item: item[1])
    return items


def build_channel(items):
    ch = Channel()
    records = []
    for sid, a, b in items:
        records.append((ch.begin_transmission(sid, make_interval(a, b), None), a, b))
    return ch, records


@given(transmission_sets())
@settings(max_examples=200, deadline=None)
def test_success_iff_no_overlap(items):
    ch, records = build_channel(items)
    for record, a, b in records:
        overlapping = [
            (oa, ob)
            for other, oa, ob in records
            if other is not record and oa < b and a < ob
        ]
        assert record.successful == (not overlapping)


@given(transmission_sets())
@settings(max_examples=200, deadline=None)
def test_successful_transmissions_pairwise_disjoint(items):
    _, records = build_channel(items)
    winners = [(a, b) for record, a, b in records if record.successful]
    for i, (a1, b1) in enumerate(winners):
        for a2, b2 in winners[i + 1 :]:
            assert b1 <= a2 or b2 <= a1


@given(transmission_sets())
@settings(max_examples=200, deadline=None)
def test_collision_count_matches_overlapped_records(items):
    ch, records = build_channel(items)
    overlapped = sum(1 for record, _, _ in records if not record.successful)
    assert ch.stats.collisions == overlapped


@given(transmission_sets(), _times, _durations)
@settings(max_examples=200, deadline=None)
def test_feedback_classification_exhaustive(items, slot_start, slot_duration):
    ch, records = build_channel(items)
    slot = make_interval(slot_start, slot_start + slot_duration)
    has_activity = ch.feedback_has_activity(slot)
    success = ch.successful_ending_within(slot)
    if success is not None:
        # An ack implies activity and a genuinely successful record
        # ending inside the slot.
        assert has_activity
        assert success.successful
        assert slot.start < success.interval.end <= slot.end
    else:
        # No ack: any activity must be busy; otherwise silence means no
        # transmission overlaps at all.
        if not has_activity:
            for _, a, b in records:
                assert b <= slot.start or slot.end <= a


@given(transmission_sets(), st.integers(min_value=0, max_value=80))
@settings(max_examples=150, deadline=None)
def test_prune_preserves_success_counts(items, prune_at_quarters):
    prune_at = Fraction(prune_at_quarters, 4)
    ch1, _ = build_channel(items)
    ch2, _ = build_channel(items)
    horizon = Fraction(1000)
    before = ch1.count_successes_up_to(horizon)
    ch2.prune_before(prune_at)
    assert ch2.count_successes_up_to(horizon) == before
