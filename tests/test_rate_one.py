"""Tests for the Theorem 5 rate-one instability harness."""

from fractions import Fraction

import pytest

from repro.algorithms import AOArrow, CAArrow, MBTFLike
from repro.lowerbounds import UnitTransmitSlots, measure_rate_one_instability
from repro.lowerbounds.rate_one import _least_squares_slope

from .helpers import make_ao, make_ca


class TestSlopeFit:
    def test_flat_series(self):
        samples = [(Fraction(t), 5) for t in range(10)]
        assert _least_squares_slope(samples) == pytest.approx(0.0)

    def test_linear_series(self):
        samples = [(Fraction(t), 3 * t) for t in range(10)]
        assert _least_squares_slope(samples) == pytest.approx(3.0)

    def test_degenerate_series(self):
        assert _least_squares_slope([]) == 0.0
        assert _least_squares_slope([(Fraction(1), 4)]) == 0.0
        assert _least_squares_slope([(Fraction(1), 1), (Fraction(1), 9)]) == 0.0


class TestUnitTransmitSlots:
    def test_costs_pinned_to_one(self):
        from repro.arrivals import UniformRate
        from repro.core import Simulator

        n, R = 3, 2
        src = UniformRate(rho="1/2", targets=[1, 2, 3], assumed_cost=1)
        sim = Simulator(
            make_ca(n, R),
            UnitTransmitSlots(R),
            max_slot_length=R,
            arrival_source=src,
        )
        sim.run(until_time=2000)
        assert sim.delivered_packets
        assert all(p.cost == 1 for p in sim.delivered_packets)


class TestTheorem5:
    @pytest.mark.parametrize("make", [make_ao, make_ca])
    def test_rate_one_destabilizes_arrow_algorithms(self, make):
        report = measure_rate_one_instability(
            make(3, 2), max_slot_length=2, horizon=4000
        )
        assert report.grew_unboundedly
        assert report.final_backlog > 50

    def test_rate_one_destabilizes_even_synchronous_token_ring(self):
        algos = {i: MBTFLike(i, 3) for i in range(1, 4)}
        report = measure_rate_one_instability(
            algos, max_slot_length=1, horizon=4000
        )
        assert report.grew_unboundedly

    def test_growth_scales_with_horizon(self):
        short = measure_rate_one_instability(
            make_ca(3, 2), max_slot_length=2, horizon=2000
        )
        long = measure_rate_one_instability(
            make_ca(3, 2), max_slot_length=2, horizon=8000
        )
        assert long.final_backlog > 2 * short.final_backlog

    @pytest.mark.parametrize("make", [make_ao, make_ca])
    def test_control_run_below_one_is_stable(self, make):
        # The same harness at rho = 3/4 must NOT report growth — the
        # instability above is about the rate, not the harness.
        report = measure_rate_one_instability(
            make(3, 2), max_slot_length=2, horizon=8000, rho="3/4"
        )
        assert report.slope < 0.02
        # AO-ARRoW's election/sync constants allow a sizeable but
        # bounded standing backlog; the rate-one runs above blow far
        # past this on the same horizon.
        assert report.final_backlog < 200

    def test_delivery_still_happens_at_rate_one(self):
        # Instability is about backlog growth, not total starvation.
        report = measure_rate_one_instability(
            make_ca(3, 2), max_slot_length=2, horizon=4000
        )
        assert report.delivered > 1000
