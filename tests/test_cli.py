"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "ca-arrow"
        assert args.n == 4

    def test_adversary_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adversary", "nonsense"])


class TestRunCommand:
    def test_ca_arrow_run(self, capsys):
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "3", "--rho", "1/2",
             "--horizon", "800"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "collisions:     0" in out
        assert "delivered:" in out

    def test_ao_arrow_run(self, capsys):
        code = main(
            ["run", "--algorithm", "ao-arrow", "--n", "3", "--rho", "1/2",
             "--horizon", "800"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "control msgs:   0" in out

    def test_bursty_workload(self, capsys):
        code = main(
            ["run", "--algorithm", "mbtf", "--n", "3", "--rho", "1/2",
             "--horizon", "500", "--schedule", "sync", "--max-slot", "1",
             "--burst", "4"]
        )
        assert code == 0
        assert "delivered:" in capsys.readouterr().out

    def test_verbose_engine_prints_promotion_path(self, capsys):
        pytest.importorskip("numpy")
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "3", "--horizon",
             "200", "--verbose-engine"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine:         batch/" in out
        assert "promoted: CAArrow -> CAArrowProgram" in out
        assert "adaptive masked-update" in out

    def test_verbose_engine_prints_demotion_reason(self, capsys):
        pytest.importorskip("numpy")
        # A crash plan wraps every station in Crashable, which has no
        # vectorized program: auto demotes and names the blocker.
        code = main(
            ["run", "--algorithm", "ca-arrow-ft", "--n", "3", "--rho",
             "2/5", "--horizon", "200", "--faults", "crash:2@40",
             "--verbose-engine"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine:         object/" in out
        assert "Crashable" in out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "carrier-pigeon"])

    def test_unknown_schedule_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--schedule", "lunar"])

    def test_metrics_flag(self, capsys):
        code = main(
            ["run", "--algorithm", "ao-arrow", "--n", "3", "--horizon", "500",
             "--metrics"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "feedback.ack" in out
        assert "slot_length" in out
        assert "events_per_second" in out

    def test_profile_flag(self, capsys):
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "3", "--horizon", "400",
             "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "adversary" in out and "algorithm" in out and "channel" in out


class TestEmitJsonlAndStats:
    def test_emit_then_stats_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "run.jsonl"
        code = main(
            ["run", "--algorithm", "ao-arrow", "--n", "3", "--rho", "1/2",
             "--horizon", "600", "--metrics", "--emit-jsonl", str(artifact)]
        )
        assert code == 0
        run_out = capsys.readouterr().out
        assert str(artifact) in run_out
        assert artifact.exists()

        code = main(["stats", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "feedback mix:" in out
        assert "slot lengths:" in out
        assert "max_backlog=" in out
        assert "events/s" in out
        assert "algorithm=ao-arrow" in out

    def test_stats_agrees_with_run_output(self, tmp_path, capsys):
        artifact = tmp_path / "run.jsonl"
        main(
            ["run", "--algorithm", "ca-arrow", "--n", "3", "--horizon", "500",
             "--emit-jsonl", str(artifact)]
        )
        run_out = capsys.readouterr().out
        delivered = int(run_out.split("delivered:")[1].split()[0])
        main(["stats", str(artifact)])
        stats_out = capsys.readouterr().out
        assert f"delivered={delivered}" in stats_out


class TestSstCommand:
    def test_abs(self, capsys):
        code = main(["sst", "--algorithm", "abs", "--n", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "solved at:" in out
        assert "winner:" in out

    def test_doubling(self, capsys):
        code = main(
            ["sst", "--algorithm", "doubling", "--n", "5", "--schedule",
             "random", "--seed", "3"]
        )
        assert code == 0
        assert "winner:" in capsys.readouterr().out

    def test_randomized(self, capsys):
        code = main(
            ["sst", "--algorithm", "randomized", "--n", "5", "--seed", "2"]
        )
        assert code == 0
        assert "winner:" in capsys.readouterr().out

    def test_unknown_sst_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["sst", "--algorithm", "oracle"])


class TestAdversaryCommand:
    def test_mirror(self, capsys):
        code = main(["adversary", "mirror", "--n", "16", "--realized-r", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slots forced:" in out
        assert "0 successes (verified)" in out

    def test_thm4(self, capsys):
        code = main(["adversary", "thm4", "--queue-limit", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "collision_forced" in out

    def test_rate1(self, capsys):
        code = main(
            ["adversary", "rate1", "--algorithm", "ca-arrow", "--n", "3",
             "--horizon", "2500"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "UNSTABLE" in out


class TestBoundsCommand:
    def test_prints_every_bound(self, capsys):
        code = main(["bounds", "--n", "8", "--max-slot", "2", "--rho", "3/4"])
        out = capsys.readouterr().out
        assert code == 0
        for marker in ("Thm 1", "Thm 2", "Thm 3", "Thm 6", "sync threshold"):
            assert marker in out


class TestDiagramCommand:
    def test_all_diagrams(self, capsys):
        code = main(["diagram"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ABS" in out and "AO-ARRoW" in out and "CA-ARRoW" in out

    def test_single_diagram_text(self, capsys):
        code = main(["diagram", "abs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "wait_silence" in out

    def test_single_diagram_dot(self, capsys):
        code = main(["diagram", "ca-arrow", "--dot"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph")

    def test_unknown_diagram_rejected(self):
        with pytest.raises(SystemExit):
            main(["diagram", "escher"])


class TestScenarioCommand:
    SPEC = (
        '{"algorithm": "ca-arrow", "n": 3, "rho": "1/2", "horizon": "800"}'
    )

    def test_list(self, capsys):
        code = main(["scenario", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ca-arrow" in out and "worst" in out
        assert "crash" in out and "bursty" in out

    def test_list_bundled_directory(self, capsys):
        code = main(["scenario", "list", "--dir", "scenarios"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bundled scenarios" in out
        assert "ca_arrow_worst.json" in out

    def test_validate_ok(self, tmp_path, capsys):
        path = tmp_path / "ok.json"
        path.write_text(self.SPEC, encoding="utf-8")
        code = main(["scenario", "validate", str(path)])
        assert code == 0
        assert "ok " in capsys.readouterr().out

    def test_validate_rejects_bad_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"algorithm": "ca-arrow", "n": 3, "rho": "3/2"}',
                        encoding="utf-8")
        code = main(["scenario", "validate", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "rho" in out

    def test_validate_directory(self, tmp_path, capsys):
        (tmp_path / "a.json").write_text(self.SPEC, encoding="utf-8")
        (tmp_path / "b.json").write_text(self.SPEC, encoding="utf-8")
        code = main(["scenario", "validate", str(tmp_path)])
        assert code == 0
        assert capsys.readouterr().out.count("ok ") == 2

    def test_run_spec_file(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(self.SPEC, encoding="utf-8")
        code = main(["scenario", "run", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "collisions:     0" in out

    def test_run_with_overrides(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(self.SPEC, encoding="utf-8")
        code = main(["scenario", "run", str(path), "--horizon", "400"])
        out = capsys.readouterr().out
        assert code == 0
        assert "horizon=400" in out

    def test_replay_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "run.jsonl"
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "3", "--rho", "1/2",
             "--horizon", "600", "--emit-jsonl", str(artifact)]
        )
        assert code == 0
        first = capsys.readouterr().out
        code = main(["scenario", "run", str(artifact)])
        replay = capsys.readouterr().out
        assert code == 0
        # Identical headline line and delivery count on replay.
        assert replay.splitlines()[0] == first.splitlines()[0]
        assert replay.splitlines()[1] == first.splitlines()[1]

    def test_run_missing_file(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run", "/no/such/spec.json"])


class TestFaultsFlag:
    def test_crash_shorthand(self, capsys):
        code = main(
            ["run", "--algorithm", "ca-arrow-ft", "--n", "3", "--rho", "2/5",
             "--horizon", "1500", "--faults", "crash:2@40"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered:" in out

    def test_generic_fault_syntax(self, capsys):
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "3", "--rho", "2/5",
             "--horizon", "1000",
             "--faults", "jam-periodic:station=9,burst=1,period=12"]
        )
        assert code == 0
        assert "delivered:" in capsys.readouterr().out

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--faults", "gremlins:x=1"])

    def test_malformed_crash_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--faults", "crash:two@forty"])

    def test_missing_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--faults", ":x=1"])


class TestTraceFlagAndCommand:
    def test_run_trace_exports_loadable_json(self, tmp_path, capsys):
        from repro.obs import load_trace

        trace = tmp_path / "run-trace.json"
        code = main(
            ["run", "--algorithm", "ca-arrow", "--n", "3", "--horizon", "400",
             "--trace", str(trace)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace: {trace}" in out
        events = load_trace(trace)
        names = {e["name"] for e in events}
        assert "run" in names
        assert {"sim.adversary", "sim.algorithm", "sim.channel"} <= names

    def test_trace_off_output_is_identical(self, tmp_path, capsys):
        args = ["run", "--algorithm", "ca-arrow", "--n", "3",
                "--horizon", "400"]
        main(args)
        plain = capsys.readouterr().out
        main(args + ["--trace", str(tmp_path / "t.json")])
        traced = capsys.readouterr().out
        assert traced.replace(f"trace: {tmp_path / 't.json'}\n", "") == plain

    def test_grid_trace_and_summarize(self, tmp_path, capsys):
        trace = tmp_path / "grid-trace.json"
        code = main(
            ["grid", "--algorithms", "ca-arrow", "--rhos", "1/2,7/10",
             "--horizon", "200", "--no-cache", "--trace", str(trace)]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["trace", "summarize", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "spans:" in out
        assert "attempts: 2, all first-try ok" in out

    def test_summarize_missing_file_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["trace", "summarize", "/no/such/trace.json"])
        assert "cannot read" in str(exc_info.value)

    def test_summarize_non_trace_exits_nonzero(self, tmp_path):
        bogus = tmp_path / "not-a-trace.json"
        bogus.write_text('{"nope": 1}')
        with pytest.raises(SystemExit) as exc_info:
            main(["trace", "summarize", str(bogus)])
        assert "traceEvents" in str(exc_info.value)


class TestHistoryCommand:
    def test_run_then_list_and_show(self, tmp_path, capsys):
        main(["run", "--algorithm", "ca-arrow", "--n", "3",
              "--horizon", "400"])
        capsys.readouterr()
        code = main(["history", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ca-arrow@rho=1/2" in out
        assert " run " in out
        code = main(["history", "show", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "kind:         run" in out
        assert "git:" in out

    def test_grid_records_and_query_filters(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["grid", "--algorithms", "ca-arrow", "--rhos", "1/2",
                "--horizon", "200", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        db = cache_dir / "history.db"
        code = main(["history", "list", "--db", str(db)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count(" grid ") == 2
        assert " cache " in out and " exec " in out
        code = main(["history", "query", "--db", str(db), "--kind", "grid",
                     "--limit", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count(" grid ") == 1

    def test_query_engine_distinguishes_adaptive_batch(self, capsys):
        """Run history records the resolved program family, so
        ``--engine batch`` finds every batch run while
        ``--engine "batch(adaptive)"`` narrows to the adaptive ones."""
        pytest.importorskip("numpy")
        main(["run", "--algorithm", "ca-arrow", "--n", "3",
              "--horizon", "400"])
        main(["run", "--algorithm", "rrw", "--n", "3", "--horizon", "400"])
        capsys.readouterr()
        assert main(["history", "query", "--engine", "batch"]) == 0
        out = capsys.readouterr().out
        assert "ca-arrow@rho=1/2" in out
        assert "rrw@rho=1/2" in out
        assert main(["history", "query", "--engine", "batch(adaptive)"]) == 0
        out = capsys.readouterr().out
        assert "ca-arrow@rho=1/2" in out
        assert "rrw@rho=1/2" not in out
        assert main(
            ["history", "query", "--engine", "batch(nonadaptive)"]
        ) == 0
        out = capsys.readouterr().out
        assert "ca-arrow@rho=1/2" not in out
        assert "rrw@rho=1/2" in out

    def test_empty_default_db_lists_nothing(self, capsys):
        code = main(["history", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(no recorded runs)" in out

    def test_explicit_missing_db_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["history", "list", "--db", "/no/such/history.db"])
        assert "cannot read" in str(exc_info.value)

    def test_show_unknown_id_exits_nonzero(self, tmp_path, capsys):
        main(["run", "--algorithm", "ca-arrow", "--n", "3",
              "--horizon", "400"])
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc_info:
            main(["history", "show", "999"])
        assert "no history row" in str(exc_info.value)

    def test_stats_missing_artifact_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["stats", "/no/such/artifact.jsonl"])
        assert "cannot read" in str(exc_info.value)


class TestVersionFlag:
    def test_version_reports_package_and_sha(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith(f"repro {__version__} (")


class TestServeSubmitCommands:
    def test_serve_rejects_taken_port(self):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(SystemExit) as exc_info:
                main(["serve", "--port", str(port)])
            assert "cannot bind" in str(exc_info.value)
        finally:
            blocker.close()

    def test_submit_missing_target_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["submit", "/no/such/spec.json"])
        assert "cannot read" in str(exc_info.value)

    def test_submit_unreachable_daemon_exits_nonzero(self, tmp_path):
        spec_path = tmp_path / "s.json"
        from repro.scenarios import ScenarioSpec

        spec_path.write_text(
            ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2",
                         horizon=400).to_json()
        )
        with pytest.raises(SystemExit) as exc_info:
            main(["submit", str(spec_path), "--url", "http://127.0.0.1:1",
                  "--timeout", "2"])
        assert "cannot reach" in str(exc_info.value)

    def test_submit_round_trip_against_live_daemon(self, tmp_path, capsys):
        import threading

        from repro.service import create_server

        server = create_server(
            "127.0.0.1", 0, cache_dir=str(tmp_path / "cache"), quiet=True
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_port}"
        spec_path = tmp_path / "s.json"
        from repro.scenarios import ScenarioSpec

        spec_path.write_text(
            ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2",
                         horizon=400).to_json()
        )
        out_path = tmp_path / "artifact.jsonl"
        try:
            code = main(["submit", str(spec_path), "--url", url,
                         "--out", str(out_path)])
            out = capsys.readouterr().out
            assert code == 0
            assert "served from: exec" in out
            assert out_path.exists()
            code = main(["submit", str(spec_path), "--url", url])
            out = capsys.readouterr().out
            assert code == 0
            assert "served from: cache" in out
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
