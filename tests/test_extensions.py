"""Tests for the open-problem extensions: unknown-R SST, randomized SST,
look-ahead adversaries (Section VII of the paper)."""

from fractions import Fraction

import pytest

from repro.algorithms import (
    ABSLeaderElection,
    DoublingABS,
    RandomizedSST,
    epoch_budget,
    epoch_guess,
)
from repro.core import ConfigurationError, Feedback, Simulator, SlotContext
from repro.timing import (
    CloningGreedyAdversary,
    MaxOverlapAdversary,
    PerStationFixed,
    RandomUniform,
    Synchronous,
    worst_case_for,
)


def finish_all(sim, algos, slack=500_000):
    sim.run(
        max_events=sim.events_processed + slack,
        stop_when=lambda s: all(a.is_done for a in algos.values()),
    )


class TestEpochParameters:
    def test_guesses_double(self):
        assert [epoch_guess(e) for e in range(4)] == [1, 2, 4, 8]

    def test_budget_grows_superlinearly(self):
        budgets = [epoch_budget(8, e) for e in range(5)]
        assert budgets == sorted(budgets)
        assert budgets[4] > 4 * budgets[3] > 16 * budgets[2] / 4

    def test_budget_covers_slowest_competitor(self):
        from repro.analysis import abs_slot_upper_bound

        for e in range(4):
            guess = epoch_guess(e)
            assert epoch_budget(8, e) >= guess * abs_slot_upper_bound(8, guess)


class TestDoublingABS:
    @pytest.mark.parametrize(
        "n,adversary,r",
        [
            (4, Synchronous(), 1),
            (4, PerStationFixed({1: 1, 2: "3/2", 3: 2, 4: "5/4"}), 2),
            (5, worst_case_for(3), 3),
            (8, worst_case_for(2), 2),
        ],
    )
    def test_exactly_one_winner(self, n, adversary, r):
        algos = {i: DoublingABS(i, n) for i in range(1, n + 1)}
        sim = Simulator(algos, adversary, max_slot_length=r)
        finish_all(sim, algos)
        winners = [i for i, a in algos.items() if a.outcome == "won"]
        assert len(winners) == 1
        assert all(
            a.outcome == "eliminated" for i, a in algos.items() if i != winners[0]
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_unique_winner_random_schedules(self, seed):
        n, r = 6, 4
        algos = {i: DoublingABS(i, n) for i in range(1, n + 1)}
        sim = Simulator(algos, RandomUniform(r, seed=seed), max_slot_length=r)
        finish_all(sim, algos)
        winners = [i for i, a in algos.items() if a.outcome == "won"]
        assert len(winners) == 1

    def test_history_records_epochs(self):
        n = 4
        algos = {i: DoublingABS(i, n) for i in range(1, n + 1)}
        sim = Simulator(algos, worst_case_for(2), max_slot_length=2)
        finish_all(sim, algos)
        for algo in algos.values():
            assert algo.history
            assert algo.history[-1].outcome in ("won", "eliminated")
            assert algo.total_slots_spent > 0

    def test_single_station(self):
        algos = {1: DoublingABS(1, 1)}
        sim = Simulator(algos, Synchronous(), max_slot_length=1)
        finish_all(sim, algos)
        assert algos[1].outcome == "won"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DoublingABS(1, 0)
        with pytest.raises(ConfigurationError):
            DoublingABS(1, 4, max_epochs=0)

    def test_against_mirror_adversary_stays_safe(self):
        # The mirror construction can stall deterministic algorithms
        # but must never trick DoublingABS into two winners: replay the
        # realized schedule and check.
        from repro.lowerbounds import run_mirror_adversary, verify_mirror_execution

        factory = lambda sid: DoublingABS(sid, 16)  # noqa: E731
        result = run_mirror_adversary(factory, 16, 2, max_phases=60)
        sim = verify_mirror_execution(factory, result)
        assert sim.channel.count_successes_up_to(sim.now) == 0


class TestRandomizedSST:
    @pytest.mark.parametrize("seed", range(6))
    def test_exactly_one_winner(self, seed):
        n, R = 6, 2
        algos = {
            i: RandomizedSST(i, transmit_probability=1 / n, seed=seed)
            for i in range(1, n + 1)
        }
        sim = Simulator(algos, worst_case_for(R), max_slot_length=R)
        end = sim.run_until_success(max_events=500_000)
        assert end is not None
        finish_all(sim, algos, slack=2000)
        winners = [i for i, a in algos.items() if a.outcome == "won"]
        assert len(winners) == 1

    def test_backoff_decays_probability(self):
        algo = RandomizedSST(1, transmit_probability=0.8, decay=0.5, seed=1)
        algo.first_action(SlotContext(feedback=None, queue_size=0, slot_index=0))
        before = algo.probability
        # Force a transmit then feed busy (collision).
        algo._was_transmitting = True
        algo.on_slot_end(
            SlotContext(feedback=Feedback.BUSY, queue_size=0, slot_index=1)
        )
        assert algo.probability == before / 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomizedSST(1, transmit_probability=0)
        with pytest.raises(ConfigurationError):
            RandomizedSST(1, transmit_probability=0.5, decay=0)

    def test_typically_faster_than_abs_at_moderate_n(self):
        # The point of the extension: randomization beats the
        # deterministic machinery in the common case.  Compare median
        # slot counts over seeds.
        n, R = 8, 2
        randomized = []
        for seed in range(7):
            algos = {
                i: RandomizedSST(i, transmit_probability=1 / n, seed=seed)
                for i in range(1, n + 1)
            }
            sim = Simulator(algos, worst_case_for(R), max_slot_length=R)
            assert sim.run_until_success(max_events=500_000) is not None
            randomized.append(sim.max_slots_elapsed())
        abs_algos = {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}
        abs_sim = Simulator(abs_algos, worst_case_for(R), max_slot_length=R)
        assert abs_sim.run_until_success(max_events=500_000) is not None
        abs_slots = abs_sim.max_slots_elapsed()
        randomized.sort()
        assert randomized[len(randomized) // 2] < abs_slots


class TestLookaheadAdversaries:
    def test_max_overlap_lengths_legal(self):
        n, R = 4, 2
        algos = {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}
        sim = Simulator(algos, MaxOverlapAdversary(R), max_slot_length=R)
        end = sim.run_until_success(max_events=200_000)
        assert end is not None  # legal schedule; ABS still wins

    def test_max_overlap_hurts_more_than_synchrony(self):
        n, R = 6, 2
        overlap_algos = {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}
        overlap_sim = Simulator(
            overlap_algos, MaxOverlapAdversary(R), max_slot_length=R
        )
        overlap_sim.run_until_success(max_events=200_000)
        sync_algos = {i: ABSLeaderElection(i, 1) for i in range(1, n + 1)}
        sync_sim = Simulator(sync_algos, Synchronous(), max_slot_length=1)
        sync_sim.run_until_success(max_events=200_000)
        assert overlap_sim.max_slots_elapsed() >= sync_sim.max_slots_elapsed()

    def test_cloning_greedy_validation(self):
        with pytest.raises(ConfigurationError):
            CloningGreedyAdversary(2, horizon_events=0)
        with pytest.raises(ConfigurationError):
            CloningGreedyAdversary(2, candidates=[3])

    def test_cloning_greedy_produces_legal_runs(self):
        n, R = 3, 2
        algos = {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}
        adversary = CloningGreedyAdversary(R, horizon_events=24)
        sim = Simulator(algos, adversary, max_slot_length=R)
        end = sim.run_until_success(max_events=2000)
        assert end is not None
        assert adversary.decisions > 0

    def test_cloning_probe_does_not_corrupt_the_run(self):
        # The same configuration with and without look-ahead cloning
        # must deliver identical *victim-visible* semantics; here we
        # check the probed run stays internally consistent (queue
        # conservation, no stuck heap) over a dynamic workload.
        from repro.algorithms import CAArrow
        from repro.arrivals import UniformRate

        n, R = 3, 2
        algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
        source = UniformRate(rho="1/2", targets=[1, 2, 3], assumed_cost=R)
        adversary = CloningGreedyAdversary(R, horizon_events=16)
        sim = Simulator(
            algos, adversary, max_slot_length=R, arrival_source=source
        )
        sim.run(until_time=120)
        delivered = len(sim.delivered_packets)
        queued = sum(sim.queue_size(i) for i in sim.station_ids)
        assert delivered + sim.total_backlog >= delivered + queued
        assert sim.now == 120
