"""Tests for the empirical MSR (max stable rate) estimator."""

from fractions import Fraction

import pytest

from repro.algorithms import SlottedAloha
from repro.analysis import estimate_msr, run_at_rate
from repro.timing import Synchronous, worst_case_for

from .helpers import make_ca


class TestRunAtRate:
    def test_low_rate_verdict_stable(self):
        trial = run_at_rate(
            make_ca(3, 2),
            worst_case_for(2),
            max_slot_length=2,
            rho="3/10",
            horizon=6000,
            assumed_cost=2,
        )
        assert trial.stable
        assert trial.rho == Fraction(3, 10)

    def test_overload_verdict_unstable(self):
        # rho in *cost* units with assumed_cost=1 but R=2 slots means
        # real demand above capacity when rho > utilization ceiling.
        trial = run_at_rate(
            make_ca(3, 2),
            worst_case_for(2),
            max_slot_length=2,
            rho="16/10",
            horizon=6000,
            assumed_cost=1,
        )
        assert not trial.stable


class TestEstimateMSR:
    def test_ca_arrow_msr_brackets_near_one(self):
        estimate = estimate_msr(
            lambda: make_ca(3, 2),
            lambda: worst_case_for(2),
            max_slot_length=2,
            horizon=6000,
            assumed_cost=2,
            low="1/4",
            high="3/2",
            iterations=4,
        )
        assert estimate.lower >= Fraction(1, 4)
        assert estimate.upper <= Fraction(3, 2)
        assert Fraction(1, 2) < estimate.estimate
        assert len(estimate.trials) >= 4

    def test_aloha_msr_is_low(self):
        n = 3

        def algos():
            return {
                i: SlottedAloha(i, transmit_probability=1 / n, seed=2)
                for i in range(1, n + 1)
            }

        estimate = estimate_msr(
            algos,
            Synchronous,
            max_slot_length=1,
            horizon=6000,
            assumed_cost=1,
            low="1/10",
            high="9/10",
            iterations=4,
        )
        # Classical slotted Aloha sits far below 1 (~1/e aggregate).
        assert estimate.estimate < Fraction(7, 10)

    def test_degenerate_bracket_when_low_unstable(self):
        from repro.core import LISTEN, StationAlgorithm

        class Mute(StationAlgorithm):
            """Never transmits: unstable at every positive rate."""

            def first_action(self, ctx):
                return LISTEN

            def on_slot_end(self, ctx):
                return LISTEN

        estimate = estimate_msr(
            lambda: {1: Mute(), 2: Mute()},
            Synchronous,
            max_slot_length=1,
            horizon=3000,
            low="1/2",
            high="9/10",
            iterations=2,
        )
        assert estimate.lower == 0
        assert estimate.upper == Fraction(1, 2)

    def test_open_bracket_when_high_stable(self):
        estimate = estimate_msr(
            lambda: make_ca(2, 1),
            Synchronous,
            max_slot_length=1,
            horizon=4000,
            low="1/10",
            high="2/5",
            iterations=2,
        )
        assert estimate.lower == estimate.upper == Fraction(2, 5)
