"""Tests for crash injection, jamming, and fault-tolerant CA-ARRoW."""

import pytest

from repro.algorithms import CAArrow, FaultTolerantCAArrow, skip_thresholds
from repro.arrivals import StaticSchedule, UniformRate
from repro.core import (
    AlwaysListen,
    ConfigurationError,
    Feedback,
    LISTEN,
    Simulator,
    SlotContext,
)
from repro.faults import Crashable, PeriodicJammer, ReactiveJammer, crash_fleet
from repro.timing import RandomUniform, Synchronous, worst_case_for


def ctx(feedback, queue=0, index=1):
    return SlotContext(feedback=feedback, queue_size=queue, slot_index=index)


class TestCrashable:
    def test_transparent_before_crash(self):
        inner = CAArrow(1, 2, 2)
        wrapped = Crashable(inner, crash_at_slot=100)
        action = wrapped.first_action(ctx(None, queue=1, index=0))
        assert action.is_transmit  # station 1 opens its turn normally

    def test_silent_after_crash(self):
        inner = CAArrow(1, 2, 2)
        wrapped = Crashable(inner, crash_at_slot=0)
        assert wrapped.first_action(ctx(None, queue=1, index=0)) == LISTEN
        assert wrapped.crashed
        assert wrapped.on_slot_end(ctx(Feedback.BUSY, queue=5)) == LISTEN

    def test_never_crashes_with_none(self):
        wrapped = Crashable(AlwaysListen(), crash_at_slot=None)
        wrapped.first_action(ctx(None, index=0))
        for index in range(1, 50):
            wrapped.on_slot_end(ctx(Feedback.SILENCE, index=index))
        assert not wrapped.crashed

    def test_capability_flags_mirrored(self):
        wrapped = Crashable(CAArrow(1, 2, 2), crash_at_slot=5)
        assert wrapped.uses_control_messages
        assert wrapped.collision_free_by_design

    def test_negative_crash_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            Crashable(AlwaysListen(), crash_at_slot=-1)

    def test_crash_fleet_validates_ids(self):
        with pytest.raises(ConfigurationError):
            crash_fleet({1: AlwaysListen()}, {9: 5})


class TestPlainCAUnderCrash:
    def test_deadlocks_after_holder_dies(self):
        n, R = 4, 2
        algos = crash_fleet(
            {i: CAArrow(i, n, R) for i in range(1, n + 1)}, {2: 40}
        )
        src = UniformRate(rho="1/2", targets=[1, 3, 4], assumed_cost=R)
        sim = Simulator(algos, worst_case_for(R), R, arrival_source=src)
        sim.run(until_time=4000)
        # A handful of deliveries before the crash, then nothing: the
        # ring waits forever for the dead holder.
        assert len(sim.delivered_packets) < 60
        assert sim.total_backlog > 300


class TestSkipThresholds:
    def test_ladder_is_increasing(self):
        ladder = skip_thresholds(2, 4)
        values = [value for pair in ladder for value in pair]
        assert values == sorted(values)
        assert all(b > a for a, b in ladder)

    def test_base_exceeds_legal_gap_silence(self):
        for R in (1, 2, 3):
            a_1, _ = skip_thresholds(R, 1)[0]
            assert a_1 > 2 * R * R  # longest crash-free silent count

    def test_b_covers_slowest_clock(self):
        for R in (2, 3):
            for a_k, b_k in skip_thresholds(R, 3):
                assert b_k >= R * a_k  # every station has skipped first


class TestFaultTolerantCA:
    def test_identical_to_ca_without_crashes(self):
        n, R = 3, 2
        src = UniformRate(rho="1/2", targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(
            {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)},
            worst_case_for(R), R, arrival_source=src,
        )
        sim.run(until_time=4000)
        assert sim.channel.stats.collisions == 0
        assert sim.total_backlog < 30
        assert all(
            sim.algorithm(i).stats.skips == 0 for i in sim.station_ids
        )

    def test_recovers_from_single_crash(self):
        n, R = 4, 2
        algos = crash_fleet(
            {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)},
            {2: 40},
        )
        src = UniformRate(rho="2/5", targets=[1, 3, 4], assumed_cost=R)
        sim = Simulator(algos, worst_case_for(R), R, arrival_source=src)
        sim.run(until_time=8000)
        assert sim.channel.stats.collisions == 0
        assert len(sim.delivered_packets) > 500
        assert sim.total_backlog < 100
        skips = sum(algos[i].inner.stats.skips for i in algos)
        assert skips > 0

    def test_recovers_from_consecutive_crashes(self):
        n, R = 4, 2
        algos = crash_fleet(
            {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)},
            {2: 40, 3: 40},
        )
        src = UniformRate(rho="1/4", targets=[1, 4], assumed_cost=R)
        sim = Simulator(algos, worst_case_for(R), R, arrival_source=src)
        sim.run(until_time=12_000)
        assert sim.channel.stats.collisions == 0
        assert len(sim.delivered_packets) > 300
        assert sim.total_backlog < 120

    def test_survives_station_one_dead_from_start(self):
        n, R = 3, 2
        algos = crash_fleet(
            {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)},
            {1: 0},
        )
        src = UniformRate(rho="1/4", targets=[2, 3], assumed_cost=R)
        sim = Simulator(algos, worst_case_for(R), R, arrival_source=src)
        sim.run(until_time=8000)
        assert sim.channel.stats.collisions == 0
        assert len(sim.delivered_packets) > 200

    @pytest.mark.parametrize("seed", range(4))
    def test_collision_free_under_random_schedules_with_crash(self, seed):
        n, R = 4, 2
        algos = crash_fleet(
            {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)},
            {3: 25},
        )
        src = UniformRate(rho="1/2", targets=[1, 2, 4], assumed_cost=R)
        sim = Simulator(algos, RandomUniform(R, seed=seed), R, arrival_source=src)
        sim.run(until_time=4000)
        assert sim.channel.stats.collisions == 0

    def test_id_validation(self):
        with pytest.raises(ConfigurationError):
            FaultTolerantCAArrow(0, 3, 2)


class TestJammers:
    def test_periodic_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicJammer(burst=0, period=4)
        with pytest.raises(ConfigurationError):
            PeriodicJammer(burst=5, period=4)

    def test_periodic_duty_cycle(self):
        jammer = PeriodicJammer(burst=1, period=4)
        actions = [jammer.first_action(ctx(None, index=0))]
        for index in range(1, 12):
            actions.append(jammer.on_slot_end(ctx(Feedback.SILENCE, index=index)))
        transmits = [a.is_transmit for a in actions]
        assert transmits == [True, False, False, False] * 3

    def test_periodic_budget_cap(self):
        jammer = PeriodicJammer(burst=2, period=2, budget=3)
        jammer.first_action(ctx(None, index=0))
        for index in range(1, 20):
            jammer.on_slot_end(ctx(Feedback.SILENCE, index=index))
        assert jammer.stats.jam_slots == 3

    def test_reactive_fires_on_activity(self):
        jammer = ReactiveJammer(burst=2)
        assert jammer.first_action(ctx(None, index=0)) == LISTEN
        assert jammer.on_slot_end(ctx(Feedback.SILENCE)).is_transmit is False
        burst1 = jammer.on_slot_end(ctx(Feedback.ACK))
        burst2 = jammer.on_slot_end(ctx(Feedback.BUSY))
        after = jammer.on_slot_end(ctx(Feedback.SILENCE))
        assert burst1.is_transmit and burst2.is_transmit
        assert not after.is_transmit
        assert jammer.stats.jam_slots == 2

    def test_jamming_degrades_ca_arrow_throughput(self):
        n, R = 3, 2

        def run(with_jammer):
            algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
            ids = [1, 2, 3]
            fleet = dict(algos)
            if with_jammer:
                fleet[9] = PeriodicJammer(burst=1, period=6)
            src = UniformRate(rho="2/5", targets=ids, assumed_cost=R)
            sim = Simulator(fleet, worst_case_for(R), R, arrival_source=src)
            sim.run(until_time=5000)
            return len(sim.delivered_packets), sim.channel.stats.collisions

        clean_delivered, clean_collisions = run(False)
        jammed_delivered, jammed_collisions = run(True)
        assert clean_collisions == 0
        assert jammed_collisions > 0  # the jammer tramples real turns
        assert jammed_delivered < clean_delivered
