"""API-surface consistency: ``__all__`` names must exist and resolve.

A stale ``__all__`` entry (renamed function, removed class) is an
import-time landmine for downstream users; this pins every public
package's declared surface to reality, including the lazily resolved
names.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.timing",
    "repro.arrivals",
    "repro.algorithms",
    "repro.lowerbounds",
    "repro.analysis",
    "repro.exec",
    "repro.faults",
    "repro.obs",
    "repro.viz",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert getattr(package, name, None) is not None, (
            f"{package_name}.__all__ lists {name!r} but it does not resolve"
        )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_unique(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert len(names) == len(set(names)), f"duplicates in {package_name}.__all__"


def test_lazy_lemma_exports_resolve():
    from repro import analysis

    for name in analysis._LEMMA_EXPORTS:
        assert getattr(analysis, name) is not None

    with pytest.raises(AttributeError):
        analysis.definitely_not_a_thing  # noqa: B018


def test_key_entry_points_importable():
    from repro.algorithms import (  # noqa: F401
        ABSLeaderElection,
        AOArrow,
        CAArrow,
        DoublingABS,
        FaultTolerantCAArrow,
        KSelection,
        RandomizedSST,
    )
    from repro.cli import main  # noqa: F401
    from repro.core import Simulator  # noqa: F401
    from repro.obs import (  # noqa: F401
        JsonlRunWriter,
        ProbeBus,
        SimulationMetrics,
        load_run,
        summarize_run,
    )
    from repro.lowerbounds import (  # noqa: F401
        force_collision_or_overflow,
        measure_rate_one_instability,
        run_mirror_adversary,
    )
