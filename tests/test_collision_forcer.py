"""Tests for the Theorem 4 collision-forcing adversary."""

from fractions import Fraction

import pytest

from repro.algorithms import NaiveTDMA, RRW
from repro.core import ConfigurationError
from repro.lowerbounds import force_collision_or_overflow, probe_first_attempt


class TestProbe:
    def test_tdma_attempt_offset(self):
        # Station 1 of a 2-ring owns even slot indices; its first
        # attempt after a packet at the end of slot S lands at the next
        # owned slot.
        probe = probe_first_attempt(
            NaiveTDMA(1, 2), start_slot=10, rho=Fraction(1, 2), queue_limit=8
        )
        assert probe.first_attempt_offset is not None
        assert 0 <= probe.first_attempt_offset <= 2

    def test_rrw_attempts_on_its_turn(self):
        probe = probe_first_attempt(
            RRW(2, 2), start_slot=10, rho=Fraction(1, 2), queue_limit=8
        )
        assert probe.first_attempt_offset is not None
        assert probe.first_attempt_offset <= 2  # turn returns within n slots

    def test_never_transmitting_station_reports_queue_growth(self):
        from repro.core import LISTEN, StationAlgorithm

        class Mute(StationAlgorithm):
            def first_action(self, ctx):
                return LISTEN

            def on_slot_end(self, ctx):
                return LISTEN

        probe = probe_first_attempt(
            Mute(), start_slot=5, rho=Fraction(1, 2), queue_limit=4
        )
        assert probe.first_attempt_offset is None
        assert probe.max_queue > 4

    def test_probe_does_not_mutate_original(self):
        algo = RRW(1, 2)
        probe_first_attempt(algo, start_slot=10, rho=Fraction(1, 2), queue_limit=4)
        assert algo.turn == 1  # untouched


class TestForceCollision:
    @pytest.mark.parametrize("victim", ["tdma", "rrw"])
    @pytest.mark.parametrize("L", [4, 16])
    def test_collision_forced_on_round_robins(self, victim, L):
        factory = (
            (lambda sid: NaiveTDMA(sid, 2))
            if victim == "tdma"
            else (lambda sid: RRW(sid, 2))
        )
        result = force_collision_or_overflow(
            factory, queue_limit=L, rho="1/2", max_slot_length=2
        )
        assert result.outcome == "collision_forced"
        # The collision equation held exactly.
        s = result.start_slot
        a = result.probe_s1.first_attempt_offset
        b = result.probe_s2.first_attempt_offset
        assert (s + a) * result.slot_length_s1 == (s + b) * result.slot_length_s2

    def test_slot_lengths_legal(self):
        result = force_collision_or_overflow(
            lambda sid: NaiveTDMA(sid, 2),
            queue_limit=8,
            rho="1/2",
            max_slot_length=2,
        )
        assert 1 <= result.slot_length_s1 <= 2
        assert 1 <= result.slot_length_s2 <= 2

    def test_mute_algorithm_overflows_queue(self):
        from repro.core import LISTEN, StationAlgorithm

        class Mute(StationAlgorithm):
            def first_action(self, ctx):
                return LISTEN

            def on_slot_end(self, ctx):
                return LISTEN

        result = force_collision_or_overflow(
            lambda sid: Mute(), queue_limit=6, rho="1/2", max_slot_length=2
        )
        assert result.outcome == "queue_exceeded"
        assert result.probe_s1.max_queue > 6

    def test_requires_real_asynchrony(self):
        with pytest.raises(ConfigurationError):
            force_collision_or_overflow(
                lambda sid: NaiveTDMA(sid, 2),
                queue_limit=4,
                rho="1/2",
                max_slot_length=1,
            )

    def test_requires_valid_rate(self):
        with pytest.raises(ConfigurationError):
            force_collision_or_overflow(
                lambda sid: NaiveTDMA(sid, 2),
                queue_limit=4,
                rho=1,
                max_slot_length=2,
            )

    def test_distinct_stations_required(self):
        with pytest.raises(ConfigurationError):
            force_collision_or_overflow(
                lambda sid: NaiveTDMA(sid, 2),
                queue_limit=4,
                rho="1/2",
                max_slot_length=2,
                s1=1,
                s2=1,
            )

    def test_larger_r_gives_more_adversary_room(self):
        # With a bigger R the solved ratio has more slack; the
        # construction still succeeds at small L.
        result = force_collision_or_overflow(
            lambda sid: NaiveTDMA(sid, 2),
            queue_limit=4,
            rho="1/4",
            max_slot_length=4,
        )
        assert result.outcome == "collision_forced"
