"""Tests for the persistent run-history index (:mod:`repro.obs.history`).

The contract: every completed grid/sweep/bench/run records one row —
automatically, silently, and without ever being able to fail the run
that produced it — and the rows read back with enough fidelity to
answer "what ran, how was it served, and where is the evidence".
"""

import os

import pytest

from repro.algorithms import CAArrow
from repro.analysis import run_grid_report, sweep_seeds_report
from repro.analysis.experiments import ExperimentCell
from repro.arrivals import UniformRate
from repro.exec import ResultCache
from repro.obs import RunHistory, default_db_path, history_enabled
from repro.obs.history import (
    record_completion,
    render_entries,
    render_entry,
)
from repro.timing import worst_case_for


def cell(name="demo", rho="1/2", horizon=400):
    n = 3
    return ExperimentCell(
        name=name,
        algorithms=lambda: {i: CAArrow(i, n, 2) for i in range(1, n + 1)},
        slot_adversary=lambda: worst_case_for(2),
        arrival_source=lambda: UniformRate(
            rho=rho, targets=[1, 2, 3], assumed_cost=2
        ),
        max_slot_length=2,
        horizon=horizon,
    )


class TestRunHistory:
    def test_record_and_get(self, tmp_path):
        history = RunHistory(tmp_path / "h.db")
        run_id = history.record(
            "grid",
            "demo",
            cells=4,
            cache_hits=1,
            cache_misses=3,
            wall_s=1.25,
            jobs=2,
            mode="fork-pool",
            git_sha="abc123",
            health={"retries": 2},
            extra={"note": "hello"},
        )
        entry = history.get(run_id)
        assert (entry.kind, entry.name, entry.status) == ("grid", "demo", "ok")
        assert (entry.cells, entry.cache_hits) == (4, 1)
        assert entry.wall_s == pytest.approx(1.25)
        assert entry.health == {"retries": 2}
        assert entry.extra == {"note": "hello"}
        assert entry.disturbed()

    def test_served_from_classification(self, tmp_path):
        history = RunHistory(tmp_path / "h.db")
        cached = history.get(history.record("grid", "g", cells=2, cache_hits=2))
        executed = history.get(history.record("grid", "g", cells=2))
        mixed = history.get(history.record("grid", "g", cells=2, cache_hits=1))
        journal = history.get(
            history.record("grid", "g", cells=2, journal_hits=2)
        )
        assert cached.served_from == "cache"
        assert executed.served_from == "exec"
        assert mixed.served_from == "mixed"
        assert journal.served_from == "journal"

    def test_query_filters(self, tmp_path):
        history = RunHistory(tmp_path / "h.db")
        history.record("grid", "alpha")
        history.record("sweep", "beta", status="failed")
        history.record("bench", "alpha_table")
        assert [e.name for e in history.list()] == [
            "alpha_table", "beta", "alpha",
        ]  # newest first
        assert [e.name for e in history.query(kind="grid")] == ["alpha"]
        assert [e.name for e in history.query(name_like="ALPHA")] == [
            "alpha_table", "alpha",
        ]
        assert [e.name for e in history.query(status="failed")] == ["beta"]
        assert history.query(limit=1)[0].name == "alpha_table"
        with pytest.raises(ValueError):
            history.query(limit=0)

    def test_update_attaches_late_facts(self, tmp_path):
        history = RunHistory(tmp_path / "h.db")
        run_id = history.record("grid", "g")
        assert history.update(run_id, trace_path="t.json", status="failed")
        entry = history.get(run_id)
        assert (entry.trace_path, entry.status) == ("t.json", "failed")
        with pytest.raises(ValueError):
            history.update(run_id, kind="nope")
        assert not history.update(run_id + 999, status="ok")

    def test_missing_db_reads_as_empty(self, tmp_path):
        history = RunHistory(tmp_path / "never-created.db")
        assert history.get(1) is None
        assert history.list() == []
        assert history.count() == 0
        assert not (tmp_path / "never-created.db").exists()  # reads don't create

    def test_record_completion_never_raises(self, tmp_path):
        # An unwritable path must yield None, not an exception.
        bad = tmp_path / "file-not-dir"
        bad.write_text("x")
        assert (
            record_completion("grid", "g", db_path=bad / "h.db") is None
        )

    def test_no_history_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_HISTORY", "1")
        assert not history_enabled()
        assert record_completion("grid", "g", db_path=tmp_path / "h.db") is None
        assert not (tmp_path / "h.db").exists()

    def test_default_db_honors_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_DB", "/tmp/somewhere.db")
        assert default_db_path() == "/tmp/somewhere.db"


class TestAutoRecording:
    def test_grid_records_next_to_its_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cells = [cell(name="a"), cell(name="b", rho="7/10")]
        first = run_grid_report(cells, cache=cache)
        second = run_grid_report(cells, cache=cache)
        history = RunHistory(tmp_path / "cache" / "history.db")
        entries = history.list()
        assert [e.served_from for e in entries] == ["cache", "exec"]
        assert all(e.kind == "grid" and e.cells == 2 for e in entries)
        assert entries[0].id == second.history_id
        assert entries[1].id == first.history_id
        assert entries[1].spec_hash == entries[0].spec_hash

    def test_uncached_grid_records_to_default_db(self, tmp_path):
        # conftest points REPRO_HISTORY_DB at tmp_path/history.db.
        report = run_grid_report([cell()])
        entry = RunHistory().get(report.history_id)
        assert entry is not None and entry.kind == "grid"
        assert entry.name == "demo"
        assert os.environ["REPRO_HISTORY_DB"] == str(RunHistory().path)

    def test_history_false_disables(self, tmp_path):
        report = run_grid_report([cell()], history=False)
        assert report.history_id is None
        assert RunHistory().count() == 0

    def test_failed_grid_records_failed_status(self, tmp_path):
        def explode():
            raise ValueError("boom")

        bad = ExperimentCell(
            name="boom",
            algorithms=explode,
            slot_adversary=lambda: worst_case_for(2),
            arrival_source=lambda: UniformRate(
                rho="1/2", targets=[1, 2, 3], assumed_cost=2
            ),
            max_slot_length=2,
            horizon=400,
        )
        report = run_grid_report([bad])
        assert report.failures
        entry = RunHistory().get(report.history_id)
        assert entry.status == "failed"

    def test_sweep_records(self, tmp_path):
        report = sweep_seeds_report(lambda seed: seed * 2, range(5))
        entry = RunHistory().get(report.history_id)
        assert entry.kind == "sweep"
        assert entry.cells == 5

    def test_bench_emit_records(self, tmp_path, monkeypatch):
        import importlib

        reporting = importlib.import_module("benchmarks.reporting")
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path / "results")
        reporting.emit(
            "demo_table",
            ["title"] + reporting.table(["a"], [[1]]),
            meta={"wall_s": 0.5, "jobs": 2, "mode": "fork-pool",
                  "cells": 3, "cache_hits": 3, "cache_misses": 0,
                  "custom": "kept"},
        )
        [entry] = RunHistory().list()
        assert (entry.kind, entry.name) == ("bench", "demo_table")
        assert entry.served_from == "cache"
        assert entry.wall_s == pytest.approx(0.5)
        assert entry.extra == {"custom": "kept"}
        assert entry.artifact_path.endswith("demo_table.json")


class TestRendering:
    def test_render_entries_table(self, tmp_path):
        history = RunHistory(tmp_path / "h.db")
        history.record("grid", "g", cells=2, cache_hits=2, wall_s=0.5,
                       health={"retries": 1})
        lines = render_entries(history.list())
        assert "served" in lines[0]
        assert any("cache" in line and "retries=1" in line for line in lines)

    def test_render_empty(self):
        assert render_entries([]) == ["(no recorded runs)"]

    def test_render_entry_detail(self, tmp_path):
        history = RunHistory(tmp_path / "h.db")
        run_id = history.record(
            "grid", "g", cells=2, trace_path="t.json", git_sha="abc"
        )
        text = "\n".join(render_entry(history.get(run_id)))
        assert "trace:        t.json" in text
        assert "git:          abc" in text


class TestQueryProvenanceFilters:
    def _seed(self, tmp_path):
        history = RunHistory(tmp_path / "h.db")
        history.record(
            "run", "batch-run",
            extra={"engine": "batch", "timebase": "lattice(1/2)"},
        )
        history.record(
            "run", "object-run",
            extra={"engine": "object", "timebase": "fraction"},
        )
        history.record(
            "grid", "mixed-grid", cells=2, cache_hits=2,
            extra={"engines": ["batch", "object"]},
        )
        history.record("grid", "exec-grid", cells=2, cache_hits=0)
        return history

    def test_engine_filter_matches_runs_and_grid_cells(self, tmp_path):
        history = self._seed(tmp_path)
        names = {e.name for e in history.query(engine="batch")}
        assert names == {"batch-run", "mixed-grid"}
        names = {e.name for e in history.query(engine="object")}
        assert names == {"object-run", "mixed-grid"}

    def test_engine_filter_matches_family_prefix(self, tmp_path):
        """Recorded engines carry the resolved program family; the
        bare family name matches both variants, the full value only its
        own."""
        history = RunHistory(tmp_path / "h.db")
        history.record(
            "run", "adaptive-run", extra={"engine": "batch(adaptive)"}
        )
        history.record(
            "run", "nonadaptive-run", extra={"engine": "batch(nonadaptive)"}
        )
        history.record(
            "grid", "adaptive-grid", cells=1,
            extra={"engines": ["batch(adaptive)"]},
        )
        history.record("run", "object-run", extra={"engine": "object"})
        names = {e.name for e in history.query(engine="batch")}
        assert names == {"adaptive-run", "nonadaptive-run", "adaptive-grid"}
        names = {e.name for e in history.query(engine="batch(adaptive)")}
        assert names == {"adaptive-run", "adaptive-grid"}
        names = {e.name for e in history.query(engine="batch(nonadaptive)")}
        assert names == {"nonadaptive-run"}

    def test_timebase_filter_matches_family_prefix(self, tmp_path):
        history = self._seed(tmp_path)
        entries = history.query(timebase="fraction")
        assert [e.name for e in entries] == ["object-run"]
        # "lattice(1/2)" is recorded with its pitch; the filter matches
        # the family name.
        entries = history.query(timebase="lattice")
        assert [e.name for e in entries] == ["batch-run"]

    def test_served_filter(self, tmp_path):
        history = self._seed(tmp_path)
        assert [e.name for e in history.query(served="cache")] == ["mixed-grid"]
        assert "exec-grid" in {e.name for e in history.query(served="exec")}

    def test_post_filter_scans_past_sql_limit(self, tmp_path):
        """One matching row buried under many non-matching newer ones."""
        history = RunHistory(tmp_path / "h.db")
        history.record("run", "needle", extra={"engine": "batch"})
        for index in range(30):
            history.record("run", f"hay-{index}",
                           extra={"engine": "object"})
        entries = history.query(engine="batch", limit=5)
        assert [e.name for e in entries] == ["needle"]

    def test_filters_compose_with_sql_clauses(self, tmp_path):
        history = self._seed(tmp_path)
        entries = history.query(kind="grid", served="cache")
        assert [e.name for e in entries] == ["mixed-grid"]
        assert history.query(kind="run", served="cache") == []
