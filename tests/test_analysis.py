"""Tests for stability assessment, metrics and phase segmentation."""

from fractions import Fraction

import pytest

from repro.algorithms import AOArrow
from repro.analysis import (
    StabilityVerdict,
    assess_stability,
    collect_metrics,
    segment_rounds,
    utilization,
    wasted_time,
)
from repro.arrivals import BurstyRate, StaticSchedule, UniformRate
from repro.core import AlwaysListen, ConfigurationError, Simulator, Trace
from repro.timing import Synchronous, worst_case_for

from .helpers import make_ao, make_ca, run_loaded


def series(values, step=10):
    return [(Fraction(k * step), v) for k, v in enumerate(values)]


class TestAssessStability:
    def test_flat_series_is_stable(self):
        verdict = assess_stability(series([3] * 20), horizon=200)
        assert verdict.stable
        assert verdict.peak == 3

    def test_growing_series_is_unstable(self):
        verdict = assess_stability(series(list(range(40))), horizon=400)
        assert not verdict.stable

    def test_transient_spike_then_drain_is_stable(self):
        values = [0, 2, 9, 9, 4, 2, 1, 1, 0, 1, 0, 1, 1, 0, 0, 0]
        verdict = assess_stability(series(values), horizon=160)
        assert verdict.stable

    def test_tolerance_absorbs_noise(self):
        values = [5] * 10 + [6] * 10  # creeps by 1
        assert assess_stability(series(values), horizon=200, tolerance=2).stable
        assert not assess_stability(
            series(values), horizon=200, tolerance=0
        ).stable

    def test_window_maxima_computed(self):
        verdict = assess_stability(
            series([1, 2, 3, 4]), horizon=40, windows=2
        )
        assert verdict.window_maxima == [2, 4]

    def test_empty_series_is_vacuously_stable(self):
        verdict = assess_stability([], horizon=100)
        assert verdict.stable and verdict.peak == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            assess_stability([], horizon=100, windows=1)
        with pytest.raises(ConfigurationError):
            assess_stability([], horizon=0)

    def test_early_late_peaks(self):
        verdict = assess_stability(
            series([9, 1, 1, 1, 1, 1, 1, 1]), horizon=80, windows=4
        )
        assert verdict.early_peak == 9
        assert verdict.late_peak == 1


class TestWastedTime:
    def test_idle_channel_is_all_waste(self):
        sim = Simulator([AlwaysListen()], Synchronous(), 1)
        sim.run(until_time=50)
        assert wasted_time(sim) == 50
        assert utilization(sim) == 0

    def test_busy_stable_run_has_high_utilization(self):
        sim = run_loaded(make_ca(3, 2), R=2, rho="3/5", horizon=5000)
        used = utilization(sim)
        assert Fraction(1, 4) < used < 1

    def test_waste_plus_success_is_horizon(self):
        sim = run_loaded(make_ao(3, 2), R=2, rho="1/2", horizon=4000)
        assert wasted_time(sim) + sim.channel.stats.success_time == sim.now


class TestMetrics:
    def test_counts_consistent(self):
        sim = run_loaded(make_ca(3, 2), R=2, rho="1/2", horizon=3000)
        metrics = collect_metrics(sim)
        assert metrics.delivered == len(sim.delivered_packets)
        assert metrics.backlog == sim.total_backlog
        assert metrics.collisions == 0
        assert sum(metrics.per_station_queue.values()) <= metrics.backlog

    def test_latency_none_when_nothing_delivered(self):
        sim = Simulator([AlwaysListen()], Synchronous(), 1)
        sim.run(until_time=10)
        metrics = collect_metrics(sim)
        assert metrics.mean_latency is None and metrics.max_latency is None

    def test_throughput_cost_uses_realized_costs(self):
        sim = run_loaded(make_ca(2, 2), R=2, rho="1/2", horizon=3000)
        metrics = collect_metrics(sim)
        expected = sum(
            (p.cost for p in sim.delivered_packets), Fraction(0)
        ) / sim.now
        assert metrics.throughput_cost == expected

    def test_row_renders(self):
        sim = run_loaded(make_ca(2, 2), R=2, rho="1/2", horizon=500)
        row = collect_metrics(sim).row()
        assert "delivered=" in row and "thr=" in row


class TestSegmentRounds:
    def _run_ao_with_trace(self):
        n, R = 3, 2
        src = BurstyRate(
            rho="1/2", burst_size=3, targets=[1, 2, 3], assumed_cost=R, limit=24
        )
        sim = Simulator(
            make_ao(n, R),
            worst_case_for(R),
            max_slot_length=R,
            arrival_source=src,
            trace=Trace(record_slots=True),
            keep_channel_history=True,
        )
        sim.run(until_time=4000)
        return sim

    def test_rounds_reconstructed(self):
        sim = self._run_ao_with_trace()
        phases = segment_rounds(sim, silence_gap=30)
        assert phases
        rounds = [r for p in phases for r in p.rounds]
        assert rounds
        # Every reconstructed delivery is accounted for.
        assert sum(r.packets_delivered for r in rounds) == len(
            sim.delivered_packets
        )

    def test_round_winners_are_real_stations(self):
        sim = self._run_ao_with_trace()
        phases = segment_rounds(sim, silence_gap=30)
        for phase in phases:
            for round_segment in phase.rounds:
                assert round_segment.winner in sim.station_ids
                assert round_segment.start <= round_segment.end

    def test_phase_boundaries_ordered(self):
        sim = self._run_ao_with_trace()
        phases = segment_rounds(sim, silence_gap=30)
        for earlier, later in zip(phases, phases[1:]):
            assert earlier.end <= later.start

    def test_empty_run_gives_no_phases(self):
        sim = Simulator([AlwaysListen()], Synchronous(), 1)
        sim.run(until_time=10)
        assert segment_rounds(sim, silence_gap=5) == []
