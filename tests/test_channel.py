"""Unit tests for the channel's overlap resolution and feedback oracle."""

from fractions import Fraction

import pytest

from repro.core import Channel, Feedback, SimulationError, make_interval


def tx(channel, sid, a, b):
    return channel.begin_transmission(sid, make_interval(a, b), packet=None)


class TestOverlapResolution:
    def test_lone_transmission_succeeds(self):
        ch = Channel()
        t = tx(ch, 1, 0, 1)
        assert t.successful

    def test_two_overlapping_both_fail(self):
        ch = Channel()
        t1 = tx(ch, 1, 0, 2)
        t2 = tx(ch, 2, 1, 3)
        assert not t1.successful and not t2.successful
        assert ch.stats.collisions == 2

    def test_touching_transmissions_both_succeed(self):
        ch = Channel()
        t1 = tx(ch, 1, 0, 2)
        t2 = tx(ch, 2, 2, 4)
        assert t1.successful and t2.successful
        assert ch.stats.collisions == 0

    def test_three_way_pileup(self):
        ch = Channel()
        records = [tx(ch, 1, 0, 3), tx(ch, 2, 1, 2), tx(ch, 3, 1, 4)]
        assert all(not r.successful for r in records)
        assert ch.stats.collisions == 3

    def test_collision_counted_once_per_transmission(self):
        ch = Channel()
        tx(ch, 1, 0, 10)
        tx(ch, 2, 1, 2)
        tx(ch, 3, 3, 4)  # overlaps only the first
        assert ch.stats.collisions == 3  # 1, 2, 3 each counted once

    def test_nested_transmission_kills_both(self):
        ch = Channel()
        t1 = tx(ch, 1, 0, 5)
        t2 = tx(ch, 2, 2, 3)
        assert not t1.successful and not t2.successful

    def test_out_of_order_recording_rejected(self):
        ch = Channel()
        tx(ch, 1, 5, 6)
        with pytest.raises(SimulationError):
            tx(ch, 2, 4, 7)

    def test_equal_start_times_allowed(self):
        ch = Channel()
        t1 = tx(ch, 1, 3, 4)
        t2 = tx(ch, 2, 3, 5)
        assert not t1.successful and not t2.successful


class TestFeedbackOracle:
    def test_silence_when_nothing_recorded(self):
        ch = Channel()
        assert not ch.feedback_has_activity(make_interval(0, 1))

    def test_activity_on_partial_overlap(self):
        ch = Channel()
        tx(ch, 1, 0, 2)
        assert ch.feedback_has_activity(make_interval(1, 3))

    def test_no_activity_for_touching_slot(self):
        ch = Channel()
        tx(ch, 1, 0, 2)
        assert not ch.feedback_has_activity(make_interval(2, 3))

    def test_successful_ending_within_basic(self):
        ch = Channel()
        t = tx(ch, 1, 0, 2)
        found = ch.successful_ending_within(make_interval(1, 3))
        assert found is t

    def test_ack_at_exact_slot_end(self):
        ch = Channel()
        t = tx(ch, 1, 0, 2)
        assert ch.successful_ending_within(make_interval(1, 2)) is t

    def test_no_ack_for_collided_transmission(self):
        ch = Channel()
        tx(ch, 1, 0, 2)
        tx(ch, 2, 1, 3)
        assert ch.successful_ending_within(make_interval(0, 4)) is None
        assert ch.feedback_has_activity(make_interval(0, 4))

    def test_two_successes_in_one_long_slot(self):
        # Back-to-back successes inside one long listening slot: the
        # oracle reports the latest-ending one, and lists both.
        ch = Channel()
        t1 = tx(ch, 1, 0, 1)
        t2 = tx(ch, 2, 1, 2)
        slot = make_interval(0, 3)
        assert ch.successful_ending_within(slot) is t2
        both = ch.successes_ending_within(slot)
        assert len(both) == 2 and t1 in both and t2 in both

    def test_count_successes_up_to(self):
        ch = Channel()
        tx(ch, 1, 0, 1)
        tx(ch, 2, 2, 3)
        assert ch.count_successes_up_to(Fraction(1)) == 1
        assert ch.count_successes_up_to(Fraction(3)) == 2
        assert ch.count_successes_up_to(Fraction(1, 2)) == 0


class TestPruning:
    def test_prune_folds_success_stats(self):
        ch = Channel()
        tx(ch, 1, 0, 1)
        tx(ch, 2, 2, 3)
        ch.prune_before(Fraction(2))
        assert ch.stats.successes == 1
        assert ch.stats.success_time == Fraction(1)
        assert len(ch.live_records) == 1

    def test_count_consistent_across_prune(self):
        ch = Channel()
        for k in range(10):
            tx(ch, 1, 2 * k, 2 * k + 1)
        before = ch.count_successes_up_to(Fraction(100))
        ch.prune_before(Fraction(9))
        assert ch.count_successes_up_to(Fraction(100)) == before == 10

    def test_first_success_end_tracked_through_prune(self):
        ch = Channel()
        tx(ch, 1, 5, 6)
        tx(ch, 2, 7, 8)
        ch.prune_before(Fraction(100))
        assert ch.first_success_end == Fraction(6)

    def test_busy_time_accumulates(self):
        ch = Channel()
        tx(ch, 1, 0, 2)
        tx(ch, 2, 5, Fraction(13, 2))
        assert ch.stats.busy_time == Fraction(7, 2)

    def test_control_transmissions_counted(self):
        ch = Channel()
        ch.begin_transmission(1, make_interval(0, 1), packet=None)
        assert ch.stats.control_transmissions == 1


class TestFeedbackFor:
    """The fused single-pass oracle equals the three-call composition."""

    def _expected(self, ch, slot):
        if ch.successful_ending_within(slot) is not None:
            return Feedback.ACK
        if ch.feedback_has_activity(slot):
            return Feedback.BUSY
        return Feedback.SILENCE

    def test_matches_composed_oracle_on_mixed_history(self):
        ch = Channel()
        tx(ch, 1, 0, 1)                      # success
        tx(ch, 2, 2, 4)                      # collides with next
        tx(ch, 3, 3, 5)
        tx(ch, 1, 6, Fraction(15, 2))        # success, rational end
        for a, b in [(0, 1), (1, 2), (0, 4), (2, 3), (4, 5), (5, 6),
                     (6, 8), (0, 8), (Fraction(13, 2), 7)]:
            slot = make_interval(a, b)
            assert ch.feedback_for(slot) is self._expected(ch, slot), (a, b)

    def test_ack_dominates_overlapping_collision(self):
        ch = Channel()
        tx(ch, 1, 0, 3)                      # collided pair spans the slot
        tx(ch, 2, 1, 4)
        tx(ch, 3, 5, 6)                      # clean success
        assert ch.feedback_for(make_interval(2, 6)) is Feedback.ACK

    def test_silence_after_touching_transmission(self):
        ch = Channel()
        tx(ch, 1, 0, 2)
        assert ch.feedback_for(make_interval(2, 3)) is Feedback.SILENCE

    def test_busy_without_finished_success(self):
        ch = Channel()
        tx(ch, 1, 0, 4)
        assert ch.feedback_for(make_interval(1, 3)) is Feedback.BUSY


class TestSuccessTracker:
    """Incremental finalized-success counter vs the counting scan."""

    def test_matches_count_successes_up_to(self):
        ch = Channel()
        ch.start_success_tracking()
        for k in range(6):
            tx(ch, 1, 2 * k, 2 * k + 1)
        for moment in range(0, 13):
            assert ch.finalized_successes(Fraction(moment)) == \
                ch.count_successes_up_to(Fraction(moment))

    def test_collisions_never_counted(self):
        ch = Channel()
        ch.start_success_tracking()
        tx(ch, 1, 0, 2)
        tx(ch, 2, 1, 3)
        tx(ch, 3, 4, 5)
        assert ch.finalized_successes(Fraction(10)) == 1
        assert ch.first_finalized_success_end == Fraction(5)

    def test_survives_pruning(self):
        ch = Channel()
        ch.start_success_tracking()
        for k in range(8):
            tx(ch, 1, 2 * k, 2 * k + 1)
        ch.prune_before(Fraction(9))
        tx(ch, 1, 20, 21)
        assert ch.finalized_successes(Fraction(30)) == 9
        assert ch.first_finalized_success_end == Fraction(1)
