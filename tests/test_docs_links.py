"""Tests for tools/check_links.py and the repo's actual doc links."""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402


class TestLinkExtraction:
    def test_finds_inline_links_and_images(self):
        text = "see [a](docs/a.md) and ![img](fig.png) and [b](b.md#anchor)"
        assert check_links.relative_targets(text) == [
            "docs/a.md", "fig.png", "b.md#anchor"
        ]

    def test_skips_absolute_and_anchor_only(self):
        text = "[x](https://example.com) [y](mailto:a@b) [z](#section)"
        assert check_links.relative_targets(text) == []


class TestBrokenLinks:
    def make_docs(self, root):
        (root / "docs").mkdir()
        (root / "README.md").write_text("[ok](docs/page.md) [anchored](docs/page.md#top)")
        (root / "docs" / "page.md").write_text("[up](../README.md)")

    def test_clean_tree_passes(self, tmp_path):
        self.make_docs(tmp_path)
        assert check_links.broken_links(tmp_path) == []
        assert check_links.main(["check_links", str(tmp_path)]) == 0

    def test_dangling_target_reported(self, tmp_path, capsys):
        self.make_docs(tmp_path)
        (tmp_path / "docs" / "page.md").write_text("[gone](missing.md)")
        failures = check_links.broken_links(tmp_path)
        assert [(d.name, t) for d, t in failures] == [("page.md", "missing.md")]
        assert check_links.main(["check_links", str(tmp_path)]) == 1
        assert "missing.md" in capsys.readouterr().out

    def test_empty_root_is_an_error(self, tmp_path):
        assert check_links.main(["check_links", str(tmp_path)]) == 2


class TestRepoDocs:
    def test_every_repo_doc_link_resolves(self):
        assert check_links.broken_links(REPO_ROOT) == []
