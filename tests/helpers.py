"""Shared builders for the test suite."""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from repro.algorithms import AOArrow, CAArrow, MBTFLike, RRW
from repro.arrivals import UniformRate
from repro.core import Simulator, StationAlgorithm, Trace
from repro.timing import SlotAdversary, Synchronous, worst_case_for


def make_ao(n: int, R) -> Dict[int, StationAlgorithm]:
    return {i: AOArrow(i, n, R) for i in range(1, n + 1)}


def make_ca(n: int, R) -> Dict[int, StationAlgorithm]:
    return {i: CAArrow(i, n, R) for i in range(1, n + 1)}


def make_rrw(n: int) -> Dict[int, StationAlgorithm]:
    return {i: RRW(i, n) for i in range(1, n + 1)}


def make_mbtf(n: int) -> Dict[int, StationAlgorithm]:
    return {i: MBTFLike(i, n) for i in range(1, n + 1)}


def run_loaded(
    algorithms: Dict[int, StationAlgorithm],
    R,
    rho,
    horizon,
    adversary: Optional[SlotAdversary] = None,
    assumed_cost=None,
    record_slots: bool = False,
) -> Simulator:
    """Run a uniform-rate workload against ``algorithms`` for ``horizon``."""
    adversary = adversary if adversary is not None else worst_case_for(R)
    assumed_cost = assumed_cost if assumed_cost is not None else R
    source = UniformRate(
        rho=rho, targets=sorted(algorithms), assumed_cost=assumed_cost
    )
    sim = Simulator(
        algorithms,
        adversary,
        max_slot_length=R,
        arrival_source=source,
        trace=Trace(record_slots=record_slots),
    )
    sim.run(until_time=horizon)
    return sim
