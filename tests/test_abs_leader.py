"""Unit and integration tests for the ABS leader-election algorithm."""

from fractions import Fraction

import pytest

from repro.algorithms import ABSLeaderElection, AbsCore, id_bit
from repro.analysis import abs_slot_upper_bound
from repro.core import (
    Feedback,
    LISTEN,
    ProtocolError,
    Simulator,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
)
from repro.timing import (
    CyclicPattern,
    PerStationFixed,
    RandomUniform,
    Synchronous,
    worst_case_for,
)


class TestIdBit:
    def test_lsb_first(self):
        assert [id_bit(6, k) for k in range(4)] == [0, 1, 1, 0]

    def test_padding_zeros(self):
        assert id_bit(3, 10) == 0


class TestAbsCoreUnit:
    def test_starts_listening(self):
        core = AbsCore(station_id=1, max_slot_length=2)
        assert core.start() == LISTEN

    def test_box1_waits_through_busy(self):
        core = AbsCore(station_id=1, max_slot_length=2)
        core.start()
        assert core.step(Feedback.BUSY) == LISTEN
        assert core.state == "wait_silence"
        assert core.step(Feedback.SILENCE) == LISTEN
        assert core.state == "listen_threshold"

    def test_bit0_threshold_armed(self):
        core = AbsCore(station_id=2, max_slot_length=2)  # bit 0 of 2 is 0
        core.start()
        core.step(Feedback.SILENCE)
        assert core.threshold == 6  # 3R at R=2

    def test_bit1_threshold_armed(self):
        core = AbsCore(station_id=1, max_slot_length=2)  # bit 0 of 1 is 1
        core.start()
        core.step(Feedback.SILENCE)
        assert core.threshold == 22  # 4R^2+3R at R=2

    def test_transmits_after_threshold_silence(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        core.step(Feedback.SILENCE)  # enter threshold loop
        for _ in range(5):
            assert core.step(Feedback.SILENCE) == LISTEN
        assert core.step(Feedback.SILENCE) == TRANSMIT_CONTROL

    def test_busy_in_threshold_eliminates(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        core.step(Feedback.SILENCE)
        assert core.step(Feedback.BUSY) is None
        assert core.outcome == "eliminated"
        assert not core.eliminated_by_ack

    def test_ack_while_listening_eliminates_with_flag(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        core.step(Feedback.SILENCE)
        assert core.step(Feedback.ACK) is None
        assert core.eliminated_by_ack

    def test_ack_in_box1_eliminates(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        assert core.step(Feedback.ACK) is None
        assert core.eliminated_by_ack

    def test_ack_after_transmit_wins(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        core.step(Feedback.SILENCE)
        for _ in range(5):
            core.step(Feedback.SILENCE)
        assert core.step(Feedback.SILENCE) == TRANSMIT_CONTROL
        assert core.step(Feedback.ACK) is None
        assert core.outcome == "won"

    def test_collision_advances_phase(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        core.step(Feedback.SILENCE)
        for _ in range(5):
            core.step(Feedback.SILENCE)
        core.step(Feedback.SILENCE)  # transmit
        assert core.step(Feedback.BUSY) == LISTEN  # collided -> next phase
        assert core.phase == 1
        assert core.state == "wait_silence"

    def test_silence_after_transmit_is_model_violation(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        core.step(Feedback.SILENCE)
        for _ in range(6):
            core.step(Feedback.SILENCE)
        with pytest.raises(ProtocolError):
            core.step(Feedback.SILENCE)

    def test_step_after_termination_rejected(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        core.step(Feedback.SILENCE)
        core.step(Feedback.BUSY)
        with pytest.raises(ProtocolError):
            core.step(Feedback.SILENCE)

    def test_packet_carrying_core_transmits_packets(self):
        core = AbsCore(station_id=2, max_slot_length=2, carries_packet=True)
        core.start()
        core.step(Feedback.SILENCE)
        for _ in range(5):
            core.step(Feedback.SILENCE)
        assert core.step(Feedback.SILENCE) == TRANSMIT_PACKET

    def test_non_positive_id_rejected(self):
        with pytest.raises(ProtocolError):
            AbsCore(station_id=0, max_slot_length=2)


def run_election(n, R, adversary, max_events=500_000):
    algos = {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}
    sim = Simulator(algos, adversary, max_slot_length=R)
    end = sim.run_until_success(max_events=max_events)
    return sim, algos, end


def finish_election(sim, algos, slack=2000):
    """Run on until every station has terminated (won or eliminated)."""
    sim.run(
        max_events=sim.events_processed + slack,
        stop_when=lambda s: all(a.is_done for a in algos.values()),
    )


class TestSstSynchronous:
    def test_exactly_one_winner(self):
        sim, algos, end = run_election(5, 1, Synchronous())
        assert end is not None
        finish_election(sim, algos)
        winners = [i for i, a in algos.items() if a.outcome == "won"]
        assert len(winners) == 1
        assert all(
            a.outcome == "eliminated" for i, a in algos.items() if i != winners[0]
        )

    def test_single_station_wins_alone(self):
        sim, algos, end = run_election(1, 1, Synchronous())
        assert end is not None
        finish_election(sim, algos)
        assert algos[1].outcome == "won"

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 16, 33])
    def test_within_theorem1_bound_sync(self, n):
        sim, algos, end = run_election(n, 1, Synchronous())
        assert end is not None
        assert sim.max_slots_elapsed() <= abs_slot_upper_bound(n, 1)


class TestSstAsynchronous:
    @pytest.mark.parametrize(
        "lengths",
        [
            {1: 1, 2: 2, 3: "3/2", 4: 2, 5: 1},
            {1: 2, 2: 2, 3: 2, 4: 2, 5: 2},
            {1: 1, 2: "5/4", 3: "3/2", 4: "7/4", 5: 2},
        ],
    )
    def test_exactly_one_winner_fixed_speeds(self, lengths):
        sim, algos, end = run_election(5, 2, PerStationFixed(lengths))
        assert end is not None
        finish_election(sim, algos)
        winners = [i for i, a in algos.items() if a.outcome == "won"]
        assert len(winners) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_exactly_one_winner_random_slots(self, seed):
        sim, algos, end = run_election(8, 3, RandomUniform(3, seed=seed))
        assert end is not None
        finish_election(sim, algos)
        winners = [i for i, a in algos.items() if a.outcome == "won"]
        assert len(winners) == 1

    @pytest.mark.parametrize("n,R", [(4, 2), (8, 2), (8, 4), (16, 3)])
    def test_within_theorem1_bound_async(self, n, R):
        sim, algos, end = run_election(n, R, worst_case_for(R))
        assert end is not None
        assert sim.max_slots_elapsed() <= abs_slot_upper_bound(n, R)

    def test_winner_transmission_is_the_first_success(self):
        sim, algos, end = run_election(6, 2, worst_case_for(2))
        finish_election(sim, algos)
        winners = [i for i, a in algos.items() if a.outcome == "won"]
        successes = [
            t for t in sim.channel.live_records if t.successful
        ]
        assert successes and successes[0].station_id == winners[0]

    def test_fractional_r(self):
        sim, algos, end = run_election(
            4, "3/2", CyclicPattern({1: [1], 2: ["3/2"], 3: [1, "3/2"], 4: ["5/4"]})
        )
        assert end is not None
        finish_election(sim, algos)
        winners = [i for i, a in algos.items() if a.outcome == "won"]
        assert len(winners) == 1


class TestAbsWrapperBehaviour:
    def test_done_station_listens_forever(self):
        algo = ABSLeaderElection(2, 2)
        algo.core.outcome = "eliminated"
        from repro.core import SlotContext

        ctx = SlotContext(feedback=Feedback.BUSY, queue_size=0, slot_index=5)
        for _ in range(3):
            assert algo.on_slot_end(ctx) == LISTEN
        assert algo.is_done

    def test_slots_used_exposed(self):
        sim, algos, end = run_election(4, 2, worst_case_for(2))
        finish_election(sim, algos)
        assert all(a.slots_used > 0 for a in algos.values())
