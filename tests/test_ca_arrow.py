"""Unit and stability tests for CA-ARRoW (Fig. 6, Theorem 6)."""

from fractions import Fraction

import pytest

from repro.algorithms import CAArrow
from repro.analysis import (
    assess_stability,
    ca_gap_slots,
    ca_queue_bound_L,
    collect_metrics,
)
from repro.arrivals import BurstyRate, StaticSchedule, UniformRate
from repro.core import ConfigurationError, Feedback, Simulator, SlotContext, Trace
from repro.timing import RandomUniform, Synchronous, worst_case_for

from .helpers import make_ca, run_loaded


def ctx(feedback, queue=0, index=1):
    return SlotContext(feedback=feedback, queue_size=queue, slot_index=index)


class TestConstruction:
    def test_id_range_checked(self):
        with pytest.raises(ConfigurationError):
            CAArrow(0, 3, 2)
        with pytest.raises(ConfigurationError):
            CAArrow(4, 3, 2)

    def test_declares_control_and_collision_freedom(self):
        algo = CAArrow(1, 3, 2)
        assert algo.uses_control_messages
        assert algo.collision_free_by_design

    def test_gap_from_bounds_module(self):
        assert CAArrow(1, 3, "5/2").gap_slots == ca_gap_slots("5/2")


class TestAutomatonUnit:
    def test_station_one_transmits_first(self):
        algo = CAArrow(1, 3, 2)
        action = algo.first_action(ctx(None, queue=2, index=0))
        assert action.is_transmit and action.carries_packet

    def test_station_one_sends_noise_when_empty(self):
        algo = CAArrow(1, 3, 2)
        action = algo.first_action(ctx(None, queue=0, index=0))
        assert action.is_transmit and not action.carries_packet

    def test_others_listen_first(self):
        algo = CAArrow(2, 3, 2)
        assert not algo.first_action(ctx(None, queue=5, index=0)).is_transmit

    def test_turn_advances_on_activity_then_silence(self):
        algo = CAArrow(3, 3, 2)
        algo.first_action(ctx(None, index=0))
        algo.on_slot_end(ctx(Feedback.ACK))
        assert algo.turn == 1
        algo.on_slot_end(ctx(Feedback.SILENCE))
        assert algo.turn == 2

    def test_silence_alone_does_not_advance(self):
        algo = CAArrow(3, 3, 2)
        algo.first_action(ctx(None, index=0))
        for _ in range(5):
            algo.on_slot_end(ctx(Feedback.SILENCE))
        assert algo.turn == 1

    def test_successor_counts_gap_before_transmitting(self):
        algo = CAArrow(2, 3, 2)
        algo.first_action(ctx(None, queue=1, index=0))
        algo.on_slot_end(ctx(Feedback.ACK, queue=1))
        algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        assert algo.state == "gap"
        action = None
        for _ in range(algo.gap_slots):
            action = algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        assert action is not None and action.is_transmit

    def test_gap_resets_on_unexpected_activity(self):
        algo = CAArrow(2, 3, 2)
        algo.first_action(ctx(None, queue=1, index=0))
        algo.on_slot_end(ctx(Feedback.ACK, queue=1))
        algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        algo.on_slot_end(ctx(Feedback.BUSY, queue=1))
        assert algo.gap_count == 0

    def test_holder_keeps_transmitting_until_empty(self):
        algo = CAArrow(1, 2, 2)
        algo.first_action(ctx(None, queue=3, index=0))
        assert algo.on_slot_end(ctx(Feedback.ACK, queue=2)).carries_packet
        assert algo.on_slot_end(ctx(Feedback.ACK, queue=1)).carries_packet
        done = algo.on_slot_end(ctx(Feedback.ACK, queue=0))
        assert not done.is_transmit
        assert algo.turn == 2

    def test_wraps_cyclically(self):
        algo = CAArrow(1, 2, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        algo.on_slot_end(ctx(Feedback.ACK))  # noise acked -> advance to 2
        assert algo.turn == 2
        algo.on_slot_end(ctx(Feedback.ACK))      # station 2 active
        algo.on_slot_end(ctx(Feedback.SILENCE))  # done -> back to 1
        assert algo.turn == 1
        assert algo.state == "gap"


class TestCollisionFreedom:
    """The headline invariant: zero collisions in *every* execution."""

    @pytest.mark.parametrize("seed", range(8))
    def test_no_collisions_random_schedules(self, seed):
        n, R = 4, 3
        src = UniformRate(rho="3/5", targets=[1, 2, 3, 4], assumed_cost=R)
        sim = Simulator(
            make_ca(n, R),
            RandomUniform(R, seed=seed),
            max_slot_length=R,
            arrival_source=src,
        )
        sim.run(until_time=4000)
        assert sim.channel.stats.collisions == 0

    @pytest.mark.parametrize("R", [1, 2, 3, "3/2", "5/2"])
    def test_no_collisions_worst_case_schedules(self, R):
        sim = run_loaded(make_ca(3, R), R=R, rho="1/2", horizon=4000)
        assert sim.channel.stats.collisions == 0

    def test_no_collisions_bursty_load(self):
        n, R = 5, 2
        src = BurstyRate(rho="4/5", burst_size=6, targets=list(range(1, 6)), assumed_cost=R)
        sim = Simulator(
            make_ca(n, R), worst_case_for(R), max_slot_length=R, arrival_source=src
        )
        sim.run(until_time=8000)
        assert sim.channel.stats.collisions == 0
        assert all(a.stats.unexpected_busy == 0 for a in sim.stations.values()
                   for a in [sim.algorithm(a.station_id)])

    def test_idle_system_keeps_cycling_noise(self):
        n, R = 3, 2
        sim = Simulator(make_ca(n, R), worst_case_for(R), max_slot_length=R)
        sim.run(until_time=2000)
        assert sim.channel.stats.collisions == 0
        assert sim.channel.stats.control_transmissions > 10
        # Every station takes turns even with nothing to send.
        assert all(sim.algorithm(i).stats.turns_taken > 0 for i in sim.station_ids)


class TestTheorem6Stability:
    @pytest.mark.parametrize("rho", ["3/10", "3/5", "9/10"])
    def test_bounded_backlog(self, rho):
        n, R = 3, 2
        trace = Trace(backlog_stride=8)
        src = UniformRate(rho=rho, targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(
            make_ca(n, R),
            worst_case_for(R),
            max_slot_length=R,
            arrival_source=src,
            trace=trace,
        )
        sim.run(until_time=20_000)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 20_000, tolerance=5).stable

    def test_queue_cost_below_theorem_bound(self):
        n, R, rho, b = 3, 2, Fraction(1, 2), 2
        trace = Trace(backlog_stride=1)
        src = BurstyRate(rho=rho, burst_size=2, targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(
            make_ca(n, R),
            worst_case_for(R),
            max_slot_length=R,
            arrival_source=src,
            trace=trace,
        )
        sim.run(until_time=30_000)
        assert trace.max_backlog * R <= ca_queue_bound_L(n, R, rho, b)

    def test_fairness_across_stations(self):
        sim = run_loaded(make_ca(4, 2), R=2, rho="3/5", horizon=10_000)
        per_station = {sid: 0 for sid in sim.station_ids}
        for p in sim.delivered_packets:
            per_station[p.station_id] += 1
        counts = sorted(per_station.values())
        assert counts[0] > 0
        assert counts[-1] <= 3 * max(counts[0], 1)

    def test_throughput_tracks_rate(self):
        sim = run_loaded(make_ca(3, 2), R=2, rho="3/5", horizon=20_000)
        metrics = collect_metrics(sim)
        assert Fraction(2, 5) < metrics.throughput_cost <= Fraction(4, 5)

    def test_single_station_ring(self):
        src = StaticSchedule([(10, 1), (11, 1), (12, 1)])
        sim = Simulator(
            {1: CAArrow(1, 1, 2)},
            worst_case_for(2),
            max_slot_length=2,
            arrival_source=src,
        )
        sim.run(until_time=500)
        assert len(sim.delivered_packets) == 3
        assert sim.channel.stats.collisions == 0
