"""Tests for the declarative scenario layer (:mod:`repro.scenarios`)."""

import json
import random

import pytest

from repro.algorithms import CAArrow
from repro.arrivals import UniformRate
from repro.core import Simulator
from repro.core.errors import ConfigurationError
from repro.exec.cache import ResultCache, fingerprint
from repro.scenarios import (
    ALGORITHMS,
    FAULTS,
    SCHEDULES,
    SOURCES,
    Registry,
    ScenarioSpec,
    load_spec,
)
from repro.timing import worst_case_for


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("demo")

        @reg.register("one", kind="a", summary="first")
        def _one():
            return 1

        assert "one" in reg
        assert reg.get("one").builder() == 1
        assert reg.get("one").meta["kind"] == "a"

    def test_duplicate_rejected_unless_replace(self):
        reg = Registry("demo")
        reg.add("x", lambda: 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.add("x", lambda: 2)
        reg.add("x", lambda: 3, replace=True)
        assert reg.get("x").builder() == 3

    def test_unknown_name_error_names_the_field(self):
        reg = Registry("adversary")
        reg.add("real", lambda: 1)
        with pytest.raises(ConfigurationError) as err:
            reg.get("fake")
        assert "adversary" in str(err.value)
        assert "'fake'" in str(err.value)
        assert "real" in str(err.value)

    def test_names_filters_on_metadata(self):
        reg = Registry("demo")
        reg.add("b", lambda: 1, kind="x")
        reg.add("a", lambda: 1, kind="x")
        reg.add("c", lambda: 1, kind="y")
        assert reg.names(kind="x") == ["a", "b"]
        assert reg.names() == ["a", "b", "c"]

    def test_builtin_registries_are_seeded(self):
        assert "ca-arrow" in ALGORITHMS
        assert "abs" in ALGORITHMS
        assert "worst" in SCHEDULES
        assert "bursty" in SOURCES
        assert "crash" in FAULTS
        assert "ca-arrow" in ALGORITHMS.names(kind="dynamic")
        assert "abs" in ALGORITHMS.names(kind="sst")


class TestSpecValidation:
    def test_unknown_algorithm_names_field(self):
        with pytest.raises(ConfigurationError, match="algorithm: unknown name"):
            ScenarioSpec(algorithm="carrier-pigeon", n=2)

    def test_unknown_schedule_names_field(self):
        with pytest.raises(ConfigurationError, match="schedule: unknown name"):
            ScenarioSpec(algorithm="ca-arrow", n=2, schedule="lunar")

    def test_unknown_source_names_field(self):
        with pytest.raises(ConfigurationError, match="source: unknown name"):
            ScenarioSpec(algorithm="ca-arrow", n=2, rho="1/2", source="firehose")

    def test_unknown_fault_kind_names_field(self):
        with pytest.raises(ConfigurationError, match="faults: unknown name"):
            ScenarioSpec(
                algorithm="ca-arrow", n=2, faults=[{"kind": "gremlins"}]
            )

    def test_r_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="max_slot: the bound R"):
            ScenarioSpec(algorithm="ca-arrow", n=2, max_slot="1/2")

    def test_rho_at_one_rejected_citing_theorem5(self):
        with pytest.raises(ConfigurationError, match="rho: .*Theorem 5"):
            ScenarioSpec(algorithm="ca-arrow", n=2, rho=1)

    def test_rho_above_one_rejected(self):
        with pytest.raises(ConfigurationError, match="rho:"):
            ScenarioSpec(algorithm="ca-arrow", n=2, rho="3/2")

    def test_unknown_json_key_rejected_by_name(self):
        doc = {"algorithm": "ca-arrow", "n": 2, "rbo": "1/2"}
        with pytest.raises(ConfigurationError, match="unknown scenario key"):
            ScenarioSpec.from_json(doc)
        with pytest.raises(ConfigurationError, match="rbo"):
            ScenarioSpec.from_json(json.dumps(doc))

    def test_missing_required_key(self):
        with pytest.raises(ConfigurationError, match="n: required key"):
            ScenarioSpec.from_json({"algorithm": "ca-arrow"})

    def test_bad_schema_version(self):
        with pytest.raises(ConfigurationError, match="schema version"):
            ScenarioSpec.from_json({"scenario": 99, "algorithm": "ca-arrow", "n": 2})

    def test_malformed_json_text(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            ScenarioSpec.from_json("{not json")

    def test_bad_n_burst_seed(self):
        with pytest.raises(ConfigurationError, match="n: must be"):
            ScenarioSpec(algorithm="ca-arrow", n=0)
        with pytest.raises(ConfigurationError, match="burst: must be"):
            ScenarioSpec(algorithm="ca-arrow", n=2, burst=0)
        with pytest.raises(ConfigurationError, match="seed: must be"):
            ScenarioSpec(algorithm="ca-arrow", n=2, seed="zero")

    def test_fault_entry_without_kind(self):
        with pytest.raises(ConfigurationError, match=r"faults\[0\]: missing"):
            ScenarioSpec(algorithm="ca-arrow", n=2, faults=[{"station": 1}])

    def test_schedule_params_rejected_by_builder(self):
        spec = ScenarioSpec(
            algorithm="ca-arrow", n=2,
            schedule={"name": "fixed", "length": 2, "bogus": 1},
        )
        with pytest.raises(ConfigurationError, match="schedule: 'fixed'"):
            spec.build_schedule()

    def test_sst_source_requires_rho(self):
        spec = ScenarioSpec(algorithm="abs", n=4, source="uniform")
        with pytest.raises(ConfigurationError, match="rho:"):
            spec.build_source()

    def test_default_name_derivation(self):
        assert ScenarioSpec(algorithm="abs", n=4).name == "abs"
        named = ScenarioSpec(algorithm="ca-arrow", n=4, rho="1/2")
        assert named.name == "ca-arrow@rho=1/2"


def _random_spec(rng):
    algorithm = rng.choice(["ca-arrow", "ao-arrow", "rrw", "aloha", "abs"])
    schedule = rng.choice(
        ["worst", "sync", "random",
         {"name": "fixed", "length": 2},
         {"name": "per-station-fixed", "lengths": {"1": 2, "2": "3/2"}}]
    )
    kwargs = dict(
        algorithm=algorithm,
        n=rng.randint(1, 9),
        max_slot=rng.choice([1, 2, "5/2", 4]),
        schedule=schedule,
        burst=rng.randint(1, 4),
        horizon=rng.choice([100, "2000", "999/2"]),
        seed=rng.randint(0, 99),
        labels={"trial": str(rng.randint(0, 9))},
    )
    if algorithm != "abs" and rng.random() < 0.8:
        kwargs["rho"] = rng.choice(["1/2", "9/10", "3/10", "99/100"])
        if rng.random() < 0.3:
            kwargs["faults"] = [
                {"kind": "crash", "station": 1, "at_slot": rng.randint(0, 50)}
            ]
    return ScenarioSpec(**kwargs)


class TestRoundTrip:
    def test_simple_round_trip(self):
        spec = ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_randomized_round_trips(self):
        rng = random.Random(20240806)
        for _ in range(60):
            spec = _random_spec(rng)
            clone = ScenarioSpec.from_json(spec.to_json())
            assert clone == spec
            assert clone.canonical() == spec.canonical()
            assert clone.__cache_form__() == spec.__cache_form__()

    def test_canonical_is_json_stable(self):
        rng = random.Random(7)
        for _ in range(20):
            spec = _random_spec(rng)
            blob = json.dumps(spec.canonical(), sort_keys=True)
            assert json.loads(blob) == spec.canonical()

    def test_replace_revalidates(self):
        spec = ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2")
        assert spec.replace(seed=5).seed == 5
        with pytest.raises(ConfigurationError, match="rho:"):
            spec.replace(rho="7/5")

    def test_load_spec_file(self, tmp_path):
        spec = ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2")
        path = tmp_path / "s.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        assert load_spec(path) == spec

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spec(tmp_path / "nope.json")


class TestBuild:
    def test_build_matches_hand_wired_simulator(self):
        spec = ScenarioSpec(
            algorithm="ca-arrow", n=3, max_slot=2, schedule="worst",
            rho="1/2", horizon=1500,
        )
        sim = spec.build()
        sim.run(until_time=spec.horizon)

        fleet = {i: CAArrow(i, 3, 2) for i in range(1, 4)}
        source = UniformRate(rho="1/2", targets=[1, 2, 3], assumed_cost=2)
        ref = Simulator(fleet, worst_case_for(2), 2, arrival_source=source)
        ref.run(until_time=1500)

        assert len(sim.delivered_packets) == len(ref.delivered_packets)
        assert sim.total_backlog == ref.total_backlog
        assert sim.channel.stats.collisions == ref.channel.stats.collisions

    def test_crash_fault_applied(self):
        spec = ScenarioSpec(
            algorithm="ca-arrow-ft", n=4, rho="2/5",
            source={"name": "uniform", "targets": [1, 3, 4]},
            faults=[{"kind": "crash", "station": 2, "at_slot": 40}],
            horizon=3000,
        )
        sim = spec.build()
        sim.run(until_time=spec.horizon)
        assert len(sim.delivered_packets) > 100  # recovered past the crash
        assert sim.channel.stats.collisions == 0

    def test_jammer_station_added(self):
        spec = ScenarioSpec(
            algorithm="ca-arrow", n=3, rho="2/5",
            faults=[{"kind": "jam-periodic", "station": 9,
                     "burst": 1, "period": 6}],
        )
        fleet = spec.build_fleet()
        assert set(fleet) == {1, 2, 3, 9}

    def test_jammer_station_clash_rejected(self):
        spec = ScenarioSpec(
            algorithm="ca-arrow", n=3, rho="2/5",
            faults=[{"kind": "jam-periodic", "station": 2,
                     "burst": 1, "period": 6}],
        )
        with pytest.raises(ConfigurationError, match="collides"):
            spec.build_fleet()

    def test_sst_spec_has_no_source(self):
        spec = ScenarioSpec(algorithm="abs", n=4, schedule="worst")
        assert spec.build_source() is None
        sim = spec.build()
        assert sim.run_until_success(max_events=500_000) is not None


class TestCacheForm:
    def test_fingerprint_uses_cache_form(self):
        spec = ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2")
        fp = fingerprint(spec)
        assert fp["kind"] == "cache-form"
        assert fp["form"]["mapping"] is not None

    def test_key_survives_cosmetic_closure_edits(self, tmp_path):
        """The satellite regression: bytecode-fingerprinted closures get
        new keys on no-op edits; canonical-JSON-keyed specs do not."""
        cache = ResultCache(tmp_path, salt="fixed")
        spec = ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2")

        def payload(factory):
            return {"kind": "demo", "factory": factory}

        # Two lambdas with identical behavior but different bytecode:
        # the fingerprint path treats them as different tasks...
        lam_a = lambda: int(1)  # noqa: E731
        lam_b = lambda: 1       # noqa: E731
        assert cache.key_for(payload(lam_a)) != cache.key_for(payload(lam_b))

        # ...while a spec keyed by canonical JSON is stable across a
        # JSON round-trip (and any cosmetic rebuild of the object).
        clone = ScenarioSpec.from_json(spec.to_json())
        assert cache.key_for(payload(spec)) == cache.key_for(payload(clone))

    def test_grid_cache_hit_across_round_trip(self, tmp_path):
        from repro.analysis import ExperimentCell, run_grid_report

        spec = ScenarioSpec(
            algorithm="ca-arrow", n=3, rho="1/2", horizon=600,
            labels={"algorithm": "ca-arrow", "rho": "1/2"},
        )
        cache = ResultCache(tmp_path / "c", salt="fixed")
        first = run_grid_report(
            [ExperimentCell.from_spec(spec)], backlog_stride=8, cache=cache
        )
        assert (cache.hits, cache.misses) == (0, 1)

        clone = ScenarioSpec.from_json(spec.to_json())
        cache2 = ResultCache(tmp_path / "c", salt="fixed")
        second = run_grid_report(
            [ExperimentCell.from_spec(clone)], backlog_stride=8, cache=cache2
        )
        assert (cache2.hits, cache2.misses) == (1, 0)
        assert (
            second.results[0].metrics.delivered
            == first.results[0].metrics.delivered
        )


class TestBundledScenarios:
    def test_every_bundled_spec_validates_and_builds(self, repo_root=None):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1] / "scenarios"
        files = sorted(root.glob("*.json"))
        assert len(files) >= 8, "bundled scenarios went missing"
        families = set()
        for path in files:
            spec = load_spec(path)
            spec.build()  # exercises every registry lookup
            families.add(ALGORITHMS.get(spec.algorithm).meta.get("family"))
        # One per algorithm family, incl. a faulty-station variant.
        assert {"ca-arrow", "ao-arrow", "ca-arrow-ft", "rrw", "mbtf",
                "tdma", "aloha"} <= families
        faulty = [path for path in files if load_spec(path).faults]
        assert faulty, "no bundled faulty-station scenario"
