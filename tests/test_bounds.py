"""Unit tests for the closed-form paper bounds (repro.analysis.bounds)."""

from fractions import Fraction

import pytest

from repro.analysis import (
    abs_listen_threshold_bit0,
    abs_listen_threshold_bit1,
    abs_phase_count,
    abs_phase_slot_bound,
    abs_slot_upper_bound,
    ao_election_slots,
    ao_long_silence_time_bound,
    ao_queue_bound_L,
    ao_queue_bound_S,
    ao_sync_extra_wait,
    ao_sync_silence_threshold,
    ca_gap_slots,
    ca_queue_bound_L,
    mbtf_queue_bound,
    sst_lower_bound_slots,
    thm4_minimum_start_slot,
)
from repro.core import ConfigurationError


class TestAbsThresholds:
    def test_bit0_is_3r(self):
        assert abs_listen_threshold_bit0(2) == 6
        assert abs_listen_threshold_bit0(4) == 12

    def test_bit1_is_4r2_plus_3r(self):
        assert abs_listen_threshold_bit1(2) == 22
        assert abs_listen_threshold_bit1(3) == 45

    def test_fractional_r_rounds_up(self):
        # R = 3/2: 3R = 4.5 -> 5 slots; 4R^2+3R = 13.5 -> 14 slots.
        assert abs_listen_threshold_bit0("3/2") == 5
        assert abs_listen_threshold_bit1("3/2") == 14

    def test_bit1_dominates_bit0_times_r(self):
        # The asymmetry that makes Lemma 3 work: a bit-1 listener
        # outlasts any bit-0 silence even at maximal slot-length skew.
        for R in (1, 2, 3, 5, 8):
            assert abs_listen_threshold_bit1(R) >= R * abs_listen_threshold_bit0(R) + R

    def test_r_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            abs_listen_threshold_bit0("1/2")


class TestAbsSlotBound:
    def test_phase_bound_formula(self):
        # (R+1) + (4R^2+3R) + 1 at R=2: 3 + 22 + 1 = 26.
        assert abs_phase_slot_bound(2) == 26

    def test_phase_count_log_n(self):
        assert abs_phase_count(1) == 2
        assert abs_phase_count(2) == 3
        assert abs_phase_count(8) == 5
        assert abs_phase_count(255) == 9

    def test_quadratic_growth_in_r(self):
        n = 16
        b2 = abs_slot_upper_bound(n, 2)
        b4 = abs_slot_upper_bound(n, 4)
        b8 = abs_slot_upper_bound(n, 8)
        # Doubling R should roughly quadruple the bound (O(R^2)).
        assert 3 < b4 / b2 < 5
        assert 3 < b8 / b4 < 5

    def test_logarithmic_growth_in_n(self):
        R = 2
        assert abs_slot_upper_bound(256, R) < 2 * abs_slot_upper_bound(16, R)

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            abs_phase_count(0)


class TestSstLowerBound:
    def test_trivial_for_single_station(self):
        assert sst_lower_bound_slots(1, 4) == 0

    def test_synchronous_case_is_log_n(self):
        assert sst_lower_bound_slots(256, 1) == 8

    def test_scales_linearly_in_r_at_fixed_log_ratio(self):
        # r and n = r^k scaled together: bound ~ r (k + 1).
        low = sst_lower_bound_slots(16, 4)   # ~ 4 * (2+1) = 12
        high = sst_lower_bound_slots(64, 8)  # ~ 8 * (2+1) = 24
        assert 1.5 < float(high) / float(low) < 2.5

    def test_below_abs_upper_bound(self):
        for n in (4, 16, 64, 256):
            for r in (2, 4, 8):
                assert sst_lower_bound_slots(n, r) <= abs_slot_upper_bound(n, r)


class TestAoConstants:
    def test_sync_threshold_exceeds_longest_election_silence(self):
        # Threshold must exceed R * (in-election silent slots) strictly.
        for R in (1, 2, 3, 4):
            in_election = (4 * R * R + 3 * R) + (R + 1)
            assert ao_sync_silence_threshold(R) > R * in_election

    def test_extra_wait_is_r_times_threshold(self):
        for R in (1, 2, 5):
            assert ao_sync_extra_wait(R) == R * ao_sync_silence_threshold(R)

    def test_election_slots_matches_abs(self):
        assert ao_election_slots(8, 2) == abs_slot_upper_bound(8, 2)

    def test_long_silence_bound_is_r_r4(self):
        b = ao_long_silence_time_bound(2, 2)
        assert b == 2 * 22 * 2 * 3 + 2


class TestAoQueueBounds:
    def test_s_formula(self):
        n, R, rho, b, r = 2, 2, Fraction(1, 2), 1, 2
        a = ao_election_slots(n, R)
        big_b = ao_long_silence_time_bound(R, r)
        expected = (n * R * a + b + big_b) / Fraction(1, 2)
        assert ao_queue_bound_S(n, R, rho, b, r) == expected

    def test_l_is_max_of_l0_l1(self):
        value = ao_queue_bound_L(4, 2, "1/2", 2, 2)
        s = ao_queue_bound_S(4, 2, "1/2", 2, 2)
        assert value >= s  # L0 >= S by construction

    def test_l_diverges_as_rho_to_one(self):
        near = ao_queue_bound_L(2, 2, "99/100", 1, 2)
        far = ao_queue_bound_L(2, 2, "1/2", 1, 2)
        assert near > 20 * far

    def test_rho_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ao_queue_bound_L(2, 2, 1, 1, 2)


class TestCaBounds:
    def test_gap_is_2r(self):
        assert ca_gap_slots(2) == 4
        assert ca_gap_slots("5/2") == 5

    def test_queue_bound_formula_shape(self):
        # 2nR^2(rho+1)/(1-rho)-shaped: check divergence and n-linearity.
        base = ca_queue_bound_L(2, 2, "1/2", 1)
        double_n = ca_queue_bound_L(4, 2, "1/2", 1)
        assert Fraction(3, 2) < double_n / base < Fraction(5, 2)
        near_one = ca_queue_bound_L(2, 2, "9/10", 1)
        assert near_one > base


class TestAuxBounds:
    def test_mbtf_bound(self):
        assert mbtf_queue_bound(3, 4) == 26

    def test_thm4_start_slot_large_enough(self):
        # S > (2L-1)/(rho(R-1)) strictly.
        s = thm4_minimum_start_slot(8, Fraction(1, 2), 2)
        assert s > Fraction(15) / Fraction(1, 2)

    def test_thm4_requires_real_asynchrony(self):
        with pytest.raises(ConfigurationError):
            thm4_minimum_start_slot(8, Fraction(1, 2), 1)

    def test_thm4_requires_positive_rate(self):
        with pytest.raises(ConfigurationError):
            thm4_minimum_start_slot(8, Fraction(0), 2)
