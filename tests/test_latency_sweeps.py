"""Tests for latency summaries and seed sweeps."""

from fractions import Fraction

import pytest

from repro.analysis import (
    LatencySummary,
    SweepStats,
    latency_by_station,
    percentile,
    summarize_latencies,
    sweep_seeds,
)
from repro.core import ConfigurationError, Packet


def delivered(pid, sid, arrive, deliver):
    p = Packet(packet_id=pid, station_id=sid, arrival_time=Fraction(arrive))
    p.mark_delivered(at=Fraction(deliver), cost=Fraction(1))
    return p


class TestPercentile:
    def test_min_and_max(self):
        values = [Fraction(k) for k in range(1, 11)]
        assert percentile(values, Fraction(0)) == 1
        assert percentile(values, Fraction(1)) == 10

    def test_nearest_rank_median(self):
        values = [Fraction(k) for k in range(1, 11)]
        assert percentile(values, Fraction(1, 2)) == 5

    def test_p90(self):
        values = [Fraction(k) for k in range(1, 11)]
        assert percentile(values, Fraction(9, 10)) == 9

    def test_single_value(self):
        assert percentile([Fraction(7)], Fraction(3, 4)) == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], Fraction(1, 2))
        with pytest.raises(ConfigurationError):
            percentile([Fraction(1)], Fraction(2))


class TestSummarizeLatencies:
    def test_empty(self):
        summary = summarize_latencies([])
        assert summary.count == 0 and summary.mean is None
        assert summary.row() == "no delivered packets"

    def test_undelivered_ignored(self):
        pending = Packet(packet_id=0, station_id=1, arrival_time=Fraction(0))
        summary = summarize_latencies([pending])
        assert summary.count == 0

    def test_statistics(self):
        packets = [delivered(k, 1, 0, k + 1) for k in range(10)]
        summary = summarize_latencies(packets)
        assert summary.count == 10
        assert summary.minimum == 1 and summary.maximum == 10
        assert summary.mean == Fraction(55, 10)
        assert summary.median == 5
        assert "p99" in summary.row() or "p99=" in summary.row()

    def test_by_station(self):
        packets = [delivered(0, 1, 0, 2), delivered(1, 2, 0, 10)]
        buckets = latency_by_station(packets)
        assert buckets[1].mean == 2
        assert buckets[2].mean == 10

    def test_end_to_end_from_simulation(self):
        from repro.algorithms import CAArrow
        from repro.arrivals import UniformRate
        from repro.core import Simulator
        from repro.timing import worst_case_for

        n, R = 3, 2
        src = UniformRate(rho="1/2", targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(
            {i: CAArrow(i, n, R) for i in range(1, n + 1)},
            worst_case_for(R), R, arrival_source=src,
        )
        sim.run(until_time=2000)
        summary = summarize_latencies(sim.delivered_packets)
        assert summary.count == len(sim.delivered_packets) > 0
        assert summary.minimum <= summary.median <= summary.p90 <= summary.maximum


class TestSweeps:
    def test_aggregates(self):
        stats = sweep_seeds(lambda seed: seed * 2, range(5))
        assert stats.count == 5
        assert stats.mean == 4
        assert stats.minimum == 0 and stats.maximum == 8
        assert stats.median == 4
        assert stats.spread == 8

    def test_even_count_median(self):
        stats = SweepStats(samples=[Fraction(1), Fraction(3)])
        assert stats.median == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep_seeds(lambda s: s, [])
        with pytest.raises(ConfigurationError):
            SweepStats(samples=[])

    def test_row_renders(self):
        stats = sweep_seeds(lambda seed: seed, range(3))
        assert "mean=" in stats.row()

    def test_simulation_sweep(self):
        from repro.algorithms import SlottedAloha
        from repro.arrivals import UniformRate
        from repro.core import Simulator
        from repro.timing import Synchronous

        def throughput(seed):
            n = 3
            algos = {
                i: SlottedAloha(i, transmit_probability=1 / n, seed=seed)
                for i in range(1, n + 1)
            }
            src = UniformRate(rho="1/5", targets=[1, 2, 3], assumed_cost=1)
            sim = Simulator(algos, Synchronous(), 1, arrival_source=src)
            sim.run(until_time=1500)
            return len(sim.delivered_packets)

        stats = sweep_seeds(throughput, range(4))
        assert stats.minimum > 0
        assert stats.spread < stats.mean  # low variance at low load
