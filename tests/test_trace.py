"""Unit tests for the trace recorder."""

from fractions import Fraction

import pytest

from repro.core import (
    ConfigurationError,
    Feedback,
    LISTEN,
    SlotRecord,
    TRANSMIT_PACKET,
    Trace,
    make_interval,
)


def record(sid=1, index=0, a=0, b=1, transmit=False, feedback=Feedback.SILENCE):
    return SlotRecord(
        station_id=sid,
        slot_index=index,
        interval=make_interval(a, b),
        action=TRANSMIT_PACKET if transmit else LISTEN,
        feedback=feedback,
        queue_size_after=0,
    )


class TestSlotRecording:
    def test_disabled_by_default(self):
        trace = Trace()
        trace.on_slot(record())
        assert trace.slots == []

    def test_enabled_keeps_records(self):
        trace = Trace(record_slots=True)
        trace.on_slot(record(index=0))
        trace.on_slot(record(index=1, a=1, b=2))
        assert len(trace.slots) == 2

    def test_slots_of_filters_by_station(self):
        trace = Trace(record_slots=True)
        trace.on_slot(record(sid=1))
        trace.on_slot(record(sid=2))
        assert [r.station_id for r in trace.slots_of(2)] == [2]

    def test_transmissions_and_acked_selectors(self):
        trace = Trace(record_slots=True)
        trace.on_slot(record(transmit=True, feedback=Feedback.ACK))
        trace.on_slot(record(feedback=Feedback.BUSY))
        assert len(trace.transmissions()) == 1
        assert len(trace.acked_slots()) == 1

    def test_horizon(self):
        trace = Trace(record_slots=True)
        assert trace.horizon() == 0
        trace.on_slot(record(a=0, b=3))
        trace.on_slot(record(a=1, b=2))
        assert trace.horizon() == 3


class TestBacklogTracking:
    def test_max_is_exact_regardless_of_stride(self):
        trace = Trace(backlog_stride=100)
        for k, value in enumerate([1, 5, 2, 9, 3]):
            trace.on_backlog_change(Fraction(k), value)
        assert trace.max_backlog == 9
        assert len(trace.backlog) == 0  # stride swallowed all samples

    def test_stride_one_records_everything(self):
        trace = Trace(backlog_stride=1)
        for k in range(5):
            trace.on_backlog_change(Fraction(k), k)
        assert len(trace.backlog) == 5
        assert trace.backlog_series() == [(Fraction(k), k) for k in range(5)]

    def test_stride_sampling(self):
        trace = Trace(backlog_stride=2)
        for k in range(6):
            trace.on_backlog_change(Fraction(k), k)
        assert len(trace.backlog) == 3

    @pytest.mark.parametrize("stride", [0, -1, -8])
    def test_invalid_stride_rejected(self, stride):
        # Regression: stride 0 used to silently never sample.
        with pytest.raises(ConfigurationError):
            Trace(backlog_stride=stride)

    def test_max_backlog_cost_is_packets_times_r(self):
        trace = Trace(backlog_stride=3)
        for k, value in enumerate([2, 7, 4]):
            trace.on_backlog_change(Fraction(k), value)
        assert trace.max_backlog_cost(2) == 14
        assert trace.max_backlog_cost("3/2") == Fraction(21, 2)
        assert trace.max_backlog_cost(Fraction(5, 2)) == Fraction(35, 2)
