"""Tests that the documented automaton diagrams match the code.

The diagrams in ``repro.viz.automata`` are documentation-as-data;
these tests keep them honest: every state a diagram names must be a
state the implementation can actually occupy, and vice versa.
"""

import itertools

import pytest

from repro.algorithms import AOArrow, CAArrow
from repro.algorithms.abs_leader import AbsCore
from repro.core import Feedback, SlotContext
from repro.viz import (
    ABS_DIAGRAM,
    ALL_DIAGRAMS,
    AO_ARROW_DIAGRAM,
    CA_ARROW_DIAGRAM,
    render_all_text,
)

FEEDBACKS = [Feedback.SILENCE, Feedback.BUSY, Feedback.ACK]


def reachable_states(factory, queue, depth=6):
    """All implementation states reachable under short feedback strings."""
    states = set()
    for string in itertools.product(FEEDBACKS, repeat=depth):
        algo = factory()
        action = algo.first_action(
            SlotContext(feedback=None, queue_size=queue, slot_index=0)
        )
        states.add(algo.state if hasattr(algo, "state") else None)
        ok = True
        for index, feedback in enumerate(string, start=1):
            if action.is_transmit and feedback is Feedback.SILENCE:
                ok = False
                break
            action = algo.on_slot_end(
                SlotContext(feedback=feedback, queue_size=queue, slot_index=index)
            )
            states.add(algo.state)
        if not ok:
            continue
    states.discard(None)
    return states


class TestDiagramsMatchImplementations:
    def test_abs_states(self):
        # AbsCore states + terminals cover the diagram exactly.
        diagram_states = set(ABS_DIAGRAM.states) | set(ABS_DIAGRAM.terminals)
        implementation_states = {"wait_silence", "listen_threshold", "transmitted"}
        implementation_outcomes = {"won", "eliminated"}
        assert diagram_states == implementation_states | implementation_outcomes

    def test_abs_transitions_executable(self):
        # Drive AbsCore along each diagram edge's input where feasible.
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        assert core.state == "wait_silence"
        core.step(Feedback.BUSY)
        assert core.state == "wait_silence"  # busy self-loop
        core.step(Feedback.SILENCE)
        assert core.state == "listen_threshold"

    def test_ao_arrow_states(self):
        reached = reachable_states(lambda: AOArrow(2, 3, 2), queue=2)
        assert reached <= set(AO_ARROW_DIAGRAM.states)
        # The cheap drive reaches at least observe and election.
        assert {"observe", "election"} <= reached

    def test_ca_arrow_states(self):
        reached = reachable_states(lambda: CAArrow(2, 3, 2), queue=2)
        assert reached <= set(CA_ARROW_DIAGRAM.states)
        assert {"wait_end", "gap"} <= reached


class TestRenderings:
    @pytest.mark.parametrize("key", sorted(ALL_DIAGRAMS))
    def test_text_contains_all_states(self, key):
        diagram = ALL_DIAGRAMS[key]
        text = diagram.to_text()
        for state in diagram.states:
            assert state in text
        assert diagram.figure in text

    @pytest.mark.parametrize("key", sorted(ALL_DIAGRAMS))
    def test_dot_is_wellformed(self, key):
        diagram = ALL_DIAGRAMS[key]
        dot = diagram.to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == len(diagram.transitions)

    def test_render_all(self):
        text = render_all_text()
        for diagram in ALL_DIAGRAMS.values():
            assert diagram.name in text
