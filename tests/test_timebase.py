"""Unit tests for the exact-time substrate (repro.core.timebase)."""

from fractions import Fraction

import pytest

from repro.core import (
    FRACTION_TIMEBASE,
    ConfigurationError,
    Interval,
    OffLatticeError,
    TickLattice,
    as_time,
    check_slot_length,
    declared_lattice_denominator,
    make_interval,
)


class TestAsTime:
    def test_int(self):
        assert as_time(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(7, 3)
        assert as_time(f) is f

    def test_string_fraction(self):
        assert as_time("7/4") == Fraction(7, 4)

    def test_string_integer(self):
        assert as_time("12") == Fraction(12)

    def test_float_reads_decimal_not_binary(self):
        # 1.5 is exactly representable, but 0.1 is not — conversion must
        # go through repr so the user's decimal intent is preserved.
        assert as_time(1.5) == Fraction(3, 2)
        assert as_time(0.1) == Fraction(1, 10)

    def test_negative_allowed_as_raw_time(self):
        # as_time itself is a converter; range checks live elsewhere.
        assert as_time(-2) == Fraction(-2)

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            as_time(True)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            as_time(object())


class TestCheckSlotLength:
    def test_unit_slot_ok(self):
        assert check_slot_length(1, 4) == Fraction(1)

    def test_max_slot_ok(self):
        assert check_slot_length(4, 4) == Fraction(4)

    def test_interior_rational_ok(self):
        assert check_slot_length("5/2", 4) == Fraction(5, 2)

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            check_slot_length("1/2", 4)

    def test_too_long_rejected(self):
        with pytest.raises(ConfigurationError):
            check_slot_length(5, 4)

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            check_slot_length(0, 4)


class TestInterval:
    def test_duration(self):
        assert make_interval(1, "5/2").duration == Fraction(3, 2)

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            make_interval(2, 2)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            make_interval(3, 2)

    def test_overlap_strict(self):
        a = make_interval(0, 2)
        b = make_interval(1, 3)
        assert a.overlaps(b) and b.overlaps(a)

    def test_touching_intervals_do_not_overlap(self):
        # Half-open convention: back-to-back slots share a point only.
        a = make_interval(0, 2)
        b = make_interval(2, 4)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_nested_overlap(self):
        outer = make_interval(0, 10)
        inner = make_interval(4, 5)
        assert outer.overlaps(inner) and inner.overlaps(outer)

    def test_disjoint(self):
        assert not make_interval(0, 1).overlaps(make_interval(5, 6))

    def test_contains_time_half_open(self):
        iv = make_interval(1, 2)
        assert iv.contains_time(Fraction(1))
        assert iv.contains_time(Fraction(3, 2))
        assert not iv.contains_time(Fraction(2))

    def test_ends_within_includes_right_endpoint(self):
        # A transmission ending exactly at the slot boundary is
        # credited to the slot that just closed (ack semantics).
        transmission = make_interval(0, 2)
        slot = make_interval(1, 2)
        assert transmission.ends_within(slot)

    def test_ends_within_excludes_left_endpoint(self):
        transmission = make_interval(0, 1)
        slot = make_interval(1, 2)
        assert not transmission.ends_within(slot)

    def test_ends_within_interior(self):
        transmission = make_interval(0, Fraction(3, 2))
        slot = make_interval(1, 2)
        assert transmission.ends_within(slot)


class TestTickLattice:
    def test_round_trip_on_lattice(self):
        tb = TickLattice(4)
        for t in (Fraction(0), Fraction(1, 4), Fraction(5, 2), Fraction(7)):
            ticks = tb.to_internal(t)
            assert isinstance(ticks, int)
            assert tb.to_public(ticks) == t

    def test_off_lattice_time_rejected(self):
        tb = TickLattice(4)
        with pytest.raises(OffLatticeError):
            tb.to_internal(Fraction(1, 3))

    def test_floor_and_ceil_conversion(self):
        tb = TickLattice(4)
        # floor: largest tick <= t; ceil: smallest tick >= t.
        assert tb.floor_internal(Fraction(1, 3)) == 1
        assert tb.ceil_internal(Fraction(1, 3)) == 2
        assert tb.floor_internal(Fraction(1, 2)) == 2
        assert tb.ceil_internal(Fraction(1, 2)) == 2
        assert tb.ceil_internal(Fraction(-1, 3)) == -1

    def test_check_slot_length_converts_and_validates(self):
        tb = TickLattice(4)
        assert tb.check_slot_length(1, max_internal=8) == 4
        assert tb.check_slot_length(Fraction(3, 2), max_internal=8) == 6
        # Memoized second lookup returns the same ticks.
        assert tb.check_slot_length(Fraction(3, 2), max_internal=8) == 6
        with pytest.raises(ConfigurationError):
            tb.check_slot_length(Fraction(3, 2), max_internal=5)
        with pytest.raises(OffLatticeError):
            tb.check_slot_length(Fraction(1, 3), max_internal=8)

    def test_memo_is_exempt_from_range_but_not_validity(self):
        # The same length must pass one R bound and fail a tighter one
        # even after being memoized by the first call.
        tb = TickLattice(2)
        assert tb.check_slot_length(Fraction(2), max_internal=4) == 4
        with pytest.raises(ConfigurationError):
            tb.check_slot_length(Fraction(2), max_internal=3)

    def test_bad_denominator_rejected(self):
        for bad in (0, -1, True, Fraction(2)):
            with pytest.raises(ConfigurationError):
                TickLattice(bad)

    def test_fraction_timebase_is_identity(self):
        tb = FRACTION_TIMEBASE
        assert tb.is_lattice is False
        t = Fraction(7, 3)
        assert tb.to_internal(t) == t
        assert tb.to_public(t) == t
        assert tb.ceil_internal(t) == t


class TestDeclaredLatticeDenominator:
    def test_missing_method_means_none(self):
        class Bare:
            pass

        assert declared_lattice_denominator(Bare()) is None

    def test_declared_value_passes_through(self):
        class Declares:
            def lattice_denominator(self):
                return 6

        assert declared_lattice_denominator(Declares()) == 6

    def test_invalid_declaration_rejected(self):
        class Lies:
            def lattice_denominator(self):
                return "six"

        with pytest.raises(ConfigurationError):
            declared_lattice_denominator(Lies())
