"""Tests for the declarative experiment runner and CSV export."""

import csv
import io

import pytest

from repro.algorithms import CAArrow
from repro.analysis import ExperimentCell, run_cell, run_grid, write_csv
from repro.arrivals import UniformRate
from repro.timing import Synchronous, worst_case_for


def cell(name="demo", rho="1/2", R=2, horizon=1200, labels=None):
    n = 3
    return ExperimentCell(
        name=name,
        algorithms=lambda: {i: CAArrow(i, n, R) for i in range(1, n + 1)},
        slot_adversary=lambda: worst_case_for(R),
        arrival_source=lambda: UniformRate(
            rho=rho, targets=[1, 2, 3], assumed_cost=R
        ),
        max_slot_length=R,
        horizon=horizon,
        labels=labels or {"rho": rho},
    )


class TestRunCell:
    def test_produces_measurements(self):
        result = run_cell(cell())
        assert result.name == "demo"
        assert result.metrics.delivered > 0
        assert result.stable
        assert result.peak_backlog >= result.metrics.backlog

    def test_labels_copied(self):
        result = run_cell(cell(labels={"rho": "1/2", "variant": "x"}))
        assert result.labels == {"rho": "1/2", "variant": "x"}

    def test_fresh_state_per_run(self):
        spec = cell()
        first = run_cell(spec)
        second = run_cell(spec)
        assert first.metrics.delivered == second.metrics.delivered


class TestRunGrid:
    def test_runs_all_cells_in_order(self):
        results = run_grid([cell(name="a", rho="1/4"), cell(name="b", rho="1/2")])
        assert [r.name for r in results] == ["a", "b"]
        assert results[0].metrics.delivered < results[1].metrics.delivered


class TestWriteCsv:
    def test_round_trips_through_csv(self, tmp_path):
        results = run_grid([cell(name="a", rho="1/4"), cell(name="b", rho="1/2")])
        path = tmp_path / "grid.csv"
        write_csv(results, str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["name"] == "a"
        assert int(rows[0]["delivered"]) > 0
        assert rows[0]["stable"] == "1"
        assert "throughput_cost" in rows[0]

    def test_union_header_across_heterogeneous_labels(self, tmp_path):
        results = [
            run_cell(cell(name="a", labels={"x": "1"})),
            run_cell(cell(name="b", labels={"y": "2"})),
        ]
        path = tmp_path / "grid.csv"
        write_csv(results, str(path))
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            assert "x" in reader.fieldnames and "y" in reader.fieldnames

    def test_empty_results_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], str(tmp_path / "none.csv"))
