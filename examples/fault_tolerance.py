#!/usr/bin/env python3
"""Failures on a bounded-asynchrony channel (§VII open problem).

A four-station CA-ARRoW ring where station 2's radio dies mid-run.
On a content-opaque channel a dead station is pure silence — plain
CA-ARRoW's successor waits for it forever, and the ring halts.  The
fault-tolerant variant climbs its skip ladder (each consecutive skip
costs an extra R factor of waiting — the price of certainty about
silence under asynchrony) and keeps delivering, still collision-free.

Run:  python examples/fault_tolerance.py
"""

from repro.algorithms import CAArrow, FaultTolerantCAArrow
from repro.arrivals import UniformRate
from repro.core import Simulator
from repro.faults import crash_fleet
from repro.timing import worst_case_for

N, R = 4, 2
CRASH = {2: 40}          # station 2 dies at its 40th slot
HORIZON = 8_000
LIVE = [1, 3, 4]


def deploy(name, make_station):
    fleet = crash_fleet(
        {i: make_station(i) for i in range(1, N + 1)}, CRASH
    )
    source = UniformRate(rho="2/5", targets=LIVE, assumed_cost=R)
    sim = Simulator(fleet, worst_case_for(R), R, arrival_source=source)
    sim.run(until_time=HORIZON)
    inner = {i: fleet[i].inner for i in fleet}
    skips = sum(getattr(a.stats, "skips", 0) for a in inner.values())
    claims = sum(
        getattr(a.stats, "recoveries_claimed", 0) for a in inner.values()
    )
    print(
        f"{name:<22} delivered={len(sim.delivered_packets):5d}  "
        f"backlog={sim.total_backlog:5d}  collisions={sim.channel.stats.collisions}  "
        f"skips={skips:4d}  claims={claims}"
    )
    return sim


def main() -> None:
    print(
        f"{N} stations, R={R}, station 2 crashes at its slot 40, "
        f"load 40% onto the survivors, horizon {HORIZON}\n"
    )
    plain = deploy("CA-ARRoW (plain)", lambda i: CAArrow(i, N, R))
    ft = deploy(
        "CA-ARRoW (fault-tol.)", lambda i: FaultTolerantCAArrow(i, N, R)
    )

    print()
    print(
        f"plain ring froze after the crash "
        f"({len(plain.delivered_packets)} deliveries, then silence);"
    )
    print(
        f"the fault-tolerant ring skipped the dead holder every cycle and "
        f"delivered {len(ft.delivered_packets)} packets, collision-free."
    )
    assert ft.channel.stats.collisions == 0
    assert len(ft.delivered_packets) > 20 * len(plain.delivered_packets)


if __name__ == "__main__":
    main()
