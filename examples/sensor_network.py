#!/usr/bin/env python3
"""Domain scenario: a sensor network that cannot afford tight clocks.

The paper's introduction motivates bounded asynchrony with weak devices
(sensor networks) where tight slot synchronization is too costly.  This
example models such a deployment:

* eight battery-powered sensors share one uplink channel;
* each sensor's local timer drifts — its slot lengths wander inside
  ``[1, R]`` with per-device patterns (cheap oscillators);
* telemetry is bursty: quiet monitoring punctuated by event bursts
  (all sensors report at once), within a leaky-bucket envelope.

We compare the deployment options an engineer actually has:

1. naive TDMA with the drifting clocks (what breaks),
2. CA-ARRoW (the paper's fix: collision-free, needs beacon "empty
   signals"),
3. AO-ARRoW (no control traffic at all — radios stay silent unless
   they hold real data).

Run:  python examples/sensor_network.py
"""

from repro.algorithms import AOArrow, CAArrow, NaiveTDMA
from repro.analysis import collect_metrics
from repro.arrivals import BurstyRate
from repro.core import Simulator
from repro.timing import CyclicPattern

N_SENSORS = 8
R = 2  # worst-case timer drift factor
HORIZON = 12_000

# Cheap-oscillator drift: every sensor cycles its own slot pattern.
DRIFT = CyclicPattern(
    {
        1: [1, "5/4"], 2: ["3/2"], 3: [2, 1], 4: ["7/4", "5/4", 1],
        5: [1], 6: [2], 7: ["5/4", "3/2"], 8: [1, 2, "3/2"],
    }
)


def burst_workload():
    # Event bursts: all 8 sensors fire together, ~20% average load.
    return BurstyRate(
        rho="1/5",
        burst_size=N_SENSORS,
        targets=list(range(1, N_SENSORS + 1)),
        assumed_cost=R,
    )


def deploy(name, algorithms):
    sim = Simulator(
        algorithms,
        DRIFT,
        max_slot_length=R,
        arrival_source=burst_workload(),
    )
    sim.run(until_time=HORIZON)
    metrics = collect_metrics(sim)
    lat = (
        f"{float(metrics.mean_latency):8.1f}"
        if metrics.mean_latency is not None
        else "     n/a"
    )
    print(
        f"{name:<14} delivered={metrics.delivered:5d}  "
        f"backlog={metrics.backlog:4d} (peak {metrics.max_backlog:4d})  "
        f"collisions={metrics.collisions:5d}  beacons={metrics.control_transmissions:6d}  "
        f"mean latency={lat}"
    )
    return metrics


def main() -> None:
    print(
        f"{N_SENSORS} drifting sensors, bursty telemetry at 20% load, "
        f"drift bound R={R}, horizon {HORIZON}\n"
    )
    tdma = deploy(
        "naive TDMA", {i: NaiveTDMA(i, N_SENSORS) for i in range(1, N_SENSORS + 1)}
    )
    ca = deploy(
        "CA-ARRoW", {i: CAArrow(i, N_SENSORS, R) for i in range(1, N_SENSORS + 1)}
    )
    ao = deploy(
        "AO-ARRoW", {i: AOArrow(i, N_SENSORS, R) for i in range(1, N_SENSORS + 1)}
    )

    print()
    print("what the numbers say:")
    print(
        f"  - TDMA's slots drift into each other: {tdma.collisions} collisions; "
        "deliveries survive only by luck of the drift pattern"
    )
    print(
        f"  - CA-ARRoW: zero collisions ({ca.collisions}) at the price of "
        f"{ca.control_transmissions} beacon transmissions"
    )
    print(
        f"  - AO-ARRoW: zero control traffic ({ao.control_transmissions}) at the "
        f"price of election collisions ({ao.collisions}) and higher latency"
    )
    assert ca.collisions == 0
    assert ao.control_transmissions == 0


if __name__ == "__main__":
    main()
