#!/usr/bin/env python3
"""Run the paper's three impossibility constructions for real.

Lower bounds are usually read, not executed.  Here all three of the
paper's adversarial constructions actually run against concrete
algorithms:

* Theorem 2 — the *mirror execution* adversary delays ABS leader
  election for provably many slots, then the realized slot schedule is
  replayed on the real channel to confirm no transmission succeeded;
* Theorem 4 — the *collision forcer* probes a collision-avoiding,
  control-free protocol (static TDMA), solves the slot-length equation
  ``(S+alpha)X = (S+beta)Y`` and replays it into a real collision;
* Theorem 5 — the *starving injector* saturates AO-ARRoW at rate
  exactly 1 while never feeding the current transmitter; backlog grows
  linearly.

Run:  python examples/adversary_showcase.py
"""

from repro.algorithms import ABSLeaderElection, AOArrow, NaiveTDMA
from repro.analysis import sst_lower_bound_slots
from repro.lowerbounds import (
    force_collision_or_overflow,
    measure_rate_one_instability,
    run_mirror_adversary,
    verify_mirror_execution,
)

N, R = 64, 4


def theorem2() -> None:
    print("=== Theorem 2: mirror-execution lower bound ===")
    factory = lambda sid: ABSLeaderElection(sid, R)  # noqa: E731
    result = run_mirror_adversary(factory, n=N, r=R)
    formula = sst_lower_bound_slots(N, R)
    print(
        f"n={N}, r={R}: adversary sustained {len(result.phases)} phases "
        f"= {result.slots_forced} slots with no successful transmission"
    )
    print(f"paper's formula lower bound: {float(formula):.1f} slots")
    print(f"final mirrored set: stations {result.survivors}")
    sim = verify_mirror_execution(factory, result)
    print(
        f"replayed on the real channel to t={result.time_forced}: "
        f"{sim.channel.count_successes_up_to(sim.now)} successes, "
        f"{sim.channel.stats.collisions} collided transmissions\n"
    )


def theorem4() -> None:
    print("=== Theorem 4: forcing a collision on a 'collision-free' protocol ===")
    result = force_collision_or_overflow(
        lambda sid: NaiveTDMA(sid, 2), queue_limit=16, rho="1/2",
        max_slot_length=2,
    )
    a = result.probe_s1.first_attempt_offset
    b = result.probe_s2.first_attempt_offset
    print(f"probe: first transmit attempts at offsets alpha={a}, beta={b} "
          f"after start slot S={result.start_slot}")
    print(f"solved listening slot lengths: X={result.slot_length_s1}, "
          f"Y={result.slot_length_s2}")
    print(f"outcome: {result.outcome} at t={result.collision_time} "
          "(verified by replay on the real channel)\n")


def theorem5() -> None:
    print("=== Theorem 5: rate-1 injection defeats every algorithm ===")
    report = measure_rate_one_instability(
        {i: AOArrow(i, 3, 2) for i in range(1, 4)},
        max_slot_length=2,
        horizon=5000,
    )
    print(f"AO-ARRoW, 3 stations, R=2, horizon 5000 at rho = 1:")
    print(f"  backlog slope: {report.slope:.4f} packets/time (positive!)")
    print(f"  final backlog: {report.final_backlog} "
          f"(peak {report.max_backlog}), delivered {report.delivered}")
    print("  the adversary starves whichever station transmits, forcing "
          "handovers whose wasted time accumulates forever")


def main() -> None:
    theorem2()
    theorem4()
    theorem5()


if __name__ == "__main__":
    main()
