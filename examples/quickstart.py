#!/usr/bin/env python3
"""Quickstart: a partially asynchronous MAC in ~30 lines.

Four stations with drifting clocks (slot lengths adversarially chosen
in [1, 2]) run CA-ARRoW — the paper's collision-free protocol — under a
steady packet load at 60% of channel capacity.  We verify the two
headline properties of Theorem 6 on the run: zero collisions, bounded
queues.

Run:  python examples/quickstart.py
"""

from repro.algorithms import CAArrow
from repro.analysis import collect_metrics
from repro.arrivals import UniformRate
from repro.core import Simulator
from repro.timing import CyclicPattern

N_STATIONS = 4
R = 2  # the known upper bound on any slot's length


def main() -> None:
    # One CA-ARRoW automaton per station; stations know only n and R.
    stations = {i: CAArrow(i, N_STATIONS, R) for i in range(1, N_STATIONS + 1)}

    # The adversary controls every slot's length within [1, R].  Here:
    # fixed per-station cyclic drift patterns (station clocks disagree
    # forever, but boundedly).
    slot_adversary = CyclicPattern(
        {1: [1, 2], 2: [2, 1, "3/2"], 3: ["3/2"], 4: [2, "5/4"]}
    )

    # Packets arrive at rate 0.6 in cost units (cost of a packet = the
    # length of the slot that transmits it, at most R), round-robin
    # across stations.
    arrivals = UniformRate(
        rho="3/5", targets=list(stations), assumed_cost=R
    )

    sim = Simulator(
        stations,
        slot_adversary,
        max_slot_length=R,
        arrival_source=arrivals,
    )
    sim.run(until_time=5_000)

    metrics = collect_metrics(sim)
    print("CA-ARRoW on a bounded-asynchrony channel")
    print(f"  horizon:            t = {sim.now}")
    print(f"  packets delivered:  {metrics.delivered}")
    print(f"  backlog at end:     {metrics.backlog} (peak {metrics.max_backlog})")
    print(f"  throughput (cost):  {float(metrics.throughput_cost):.3f} per time unit")
    print(f"  mean latency:       {float(metrics.mean_latency):.1f}")
    print(f"  collisions:         {metrics.collisions}")

    assert metrics.collisions == 0, "Theorem 6: CA-ARRoW never collides"
    assert metrics.max_backlog < 100, "Theorem 6: queues stay bounded"
    print("\nTheorem 6 invariants hold on this execution.")


if __name__ == "__main__":
    main()
