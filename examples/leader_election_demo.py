#!/usr/bin/env python3
"""Leader election (SST) with ABS: watch asynchrony at work.

Runs the paper's ABS algorithm (Fig. 3) on the same station set under
three progressively nastier slot adversaries, printing the election
timeline for each.  The rendered glyphs show the paper's mechanics
directly: bit-0 stations transmit after short listens, bit-1 stations
overhear them and drop out, collisions push survivors to the next bit.

Run:  python examples/leader_election_demo.py
"""

from repro.algorithms import ABSLeaderElection
from repro.analysis import abs_slot_upper_bound
from repro.core import Simulator, Trace
from repro.timing import PerStationFixed, RandomUniform, Synchronous
from repro.viz import render_timeline

N, R = 5, 2

SCENARIOS = [
    ("synchronous (all slots length 1)", Synchronous(), 1),
    (
        "fixed speed skew (1 : 5/4 : 3/2 : 7/4 : 2)",
        PerStationFixed({1: 1, 2: "5/4", 3: "3/2", 4: "7/4", 5: 2}),
        R,
    ),
    ("random slot lengths in [1, 2]", RandomUniform(R, seed=13), R),
]


def main() -> None:
    for title, adversary, r_bound in SCENARIOS:
        algos = {i: ABSLeaderElection(i, r_bound) for i in range(1, N + 1)}
        trace = Trace(record_slots=True)
        sim = Simulator(
            algos, adversary, max_slot_length=r_bound, trace=trace,
            keep_channel_history=True,
        )
        solved_at = sim.run_until_success(max_events=2_000_000)
        sim.run(
            max_events=sim.events_processed + 500,
            stop_when=lambda s: all(a.is_done for a in algos.values()),
        )
        winner = next(i for i, a in algos.items() if a.outcome == "won")
        bound = abs_slot_upper_bound(N, r_bound)

        print(f"\n=== {title} ===")
        print(
            f"SST solved at t = {solved_at}; winner: station {winner}; "
            f"max slots used: {sim.max_slots_elapsed()} "
            f"(Theorem 1 bound: {bound})"
        )
        print(render_timeline(trace, width=92))

    print(
        "\nEvery scenario elected exactly one leader — the paper's SST "
        "guarantee — at a slot cost within the O(R^2 log n) bound."
    )


if __name__ == "__main__":
    main()
