#!/usr/bin/env python3
"""Stability frontier sweep: AO-ARRoW vs CA-ARRoW vs slotted Aloha.

The paper's central claim (Fig. 1): under bounded asynchrony the two
ARRoW protocols keep queues bounded at *every* injection rate below 1,
while classical randomized access (Aloha) gives up far earlier — and
at rate exactly 1 nothing survives (Theorem 5).  This example sweeps
the rate and prints the measured frontier.

Run:  python examples/stability_sweep.py
"""

from repro.algorithms import AOArrow, CAArrow, SlottedAloha
from repro.analysis import assess_stability
from repro.arrivals import UniformRate
from repro.core import Simulator, Trace
from repro.timing import Synchronous, worst_case_for

N, R = 4, 2
HORIZON = 10_000
RATES = ["1/4", "1/2", "7/10", "9/10"]


def run_one(make_algos, slot_adversary, r_bound, rho, assumed_cost):
    trace = Trace(backlog_stride=8)
    source = UniformRate(
        rho=rho, targets=list(range(1, N + 1)), assumed_cost=assumed_cost
    )
    sim = Simulator(
        make_algos(), slot_adversary, max_slot_length=r_bound,
        arrival_source=source, trace=trace,
    )
    sim.run(until_time=HORIZON)
    samples = trace.backlog_series()
    samples.append((sim.now, sim.total_backlog))
    verdict = assess_stability(samples, HORIZON, tolerance=5)
    return verdict, sim


PROTOCOLS = {
    # (factory, adversary factory, R, assumed cost)
    "AO-ARRoW  (async R=2)": (
        lambda: {i: AOArrow(i, N, R) for i in range(1, N + 1)},
        lambda: worst_case_for(R), R, R,
    ),
    "CA-ARRoW  (async R=2)": (
        lambda: {i: CAArrow(i, N, R) for i in range(1, N + 1)},
        lambda: worst_case_for(R), R, R,
    ),
    "Aloha p=1/n (sync)  ": (
        lambda: {
            i: SlottedAloha(i, transmit_probability=1 / N, seed=11)
            for i in range(1, N + 1)
        },
        Synchronous, 1, 1,
    ),
}


def main() -> None:
    header = "protocol".ljust(22) + "".join(rho.center(12) for rho in RATES)
    print(header)
    print("-" * len(header))
    for name, (make, adversary, r_bound, cost) in PROTOCOLS.items():
        cells = []
        for rho in RATES:
            verdict, sim = run_one(make, adversary(), r_bound, rho, cost)
            mark = "stable" if verdict.stable else "UNSTABLE"
            cells.append(f"{mark}({verdict.peak})".center(12))
        print(name.ljust(22) + "".join(cells))
    print(
        "\ncells show verdict(peak backlog); ARRoW protocols hold the "
        "line at every rho < 1 — Aloha collapses first (Fig. 1 / Thms 3 & 6)."
    )


if __name__ == "__main__":
    main()
