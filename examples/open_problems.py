#!/usr/bin/env python3
"""The paper's §VII open problems, answered by experiment.

Two quick measurements on the same worst-case schedule:

1. **Unknown R** — how much does SST cost when only the *existence* of
   the bound is known?  (`DoublingABS` vs plain ABS.)
2. **Randomization** — does a coin beat the deterministic lower bound?
   (`RandomizedSST` medians vs the Theorem 2 formula.)

Run:  python examples/open_problems.py
"""

import statistics

from repro.algorithms import ABSLeaderElection, DoublingABS, RandomizedSST
from repro.analysis import abs_slot_upper_bound, sst_lower_bound_slots
from repro.core import Simulator
from repro.timing import worst_case_for


def slots_to_sst(fleet, R):
    sim = Simulator(fleet, worst_case_for(R), max_slot_length=R)
    solved = sim.run_until_success(max_events=2_000_000)
    assert solved is not None
    return sim.max_slots_elapsed()


def main() -> None:
    print("== Open problem 1: SST with unknown R ==")
    for n, R in [(8, 2), (16, 4)]:
        known = slots_to_sst(
            {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}, R
        )
        unknown = slots_to_sst(
            {i: DoublingABS(i, n) for i in range(1, n + 1)}, R
        )
        print(
            f"  n={n:3d} R={R}: ABS(R known) {known:4d} slots | "
            f"DoublingABS(R unknown) {unknown:4d} slots | "
            f"Thm 1 budget {abs_slot_upper_bound(n, R)}"
        )
    print(
        "  (safety is free — the first successful transmission is heard\n"
        "   by everyone whatever the slot lengths; doubling only buys liveness)"
    )

    print("\n== Open problem 2: randomized SST vs the deterministic bound ==")
    for n, R in [(16, 2), (32, 4)]:
        samples = []
        for seed in range(9):
            fleet = {
                i: RandomizedSST(i, transmit_probability=1 / n, seed=seed)
                for i in range(1, n + 1)
            }
            samples.append(slots_to_sst(fleet, R))
        det_bound = sst_lower_bound_slots(n, R)
        abs_cost = slots_to_sst(
            {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}, R
        )
        print(
            f"  n={n:3d} R={R}: randomized median {statistics.median(samples):4.0f} "
            f"(max {max(samples)}) | deterministic formula bound "
            f"{float(det_bound):5.1f} | ABS {abs_cost}"
        )
    print(
        "  (the Theorem 2 bound binds deterministic algorithms only —\n"
        "   coin flips sidestep the mirror adversary entirely)"
    )


if __name__ == "__main__":
    main()
