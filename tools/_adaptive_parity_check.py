"""Ad-hoc object-vs-batch parity harness for the adaptive programs.

Development scratch tool: runs each adaptive family on several schedules
and compares the strict fingerprint (same one tests/test_batch.py uses).
Not part of the test suite; kept for quick local iteration.
"""

import dataclasses
import sys

sys.path.insert(0, "src")

from repro.scenarios import ScenarioSpec


def fingerprint(sim, drain=True):
    if drain:
        sim.channel.drain_all(sim.now)
    return (
        sim.events_processed,
        sim.now,
        sim.total_backlog,
        sim.trace.max_backlog,
        tuple(
            (p.packet_id, p.station_id, p.arrival_time, p.delivered_time,
             p.cost)
            for p in sim.delivered_packets
        ),
        dataclasses.astuple(sim.channel.stats),
        tuple(sorted(sim._event_heap)),
        tuple(
            (rt.station_id, rt.slot_index, rt.slot_start, rt.slot_end,
             rt.slots_elapsed, len(rt.queue))
            for rt in (sim.stations[sid] for sid in sim.station_ids)
        ),
        tuple(
            (t.station_id, t.interval.start, t.interval.end, t.overlapped,
             t.packet.packet_id if t.packet is not None else None)
            for t in sim.channel._transmissions
        ),
    )


def algo_state(sim):
    out = []
    for sid in sim.station_ids:
        algo = sim.stations[sid].algorithm
        row = {
            k: getattr(algo, k)
            for k in dir(algo)
            if not k.startswith("__") and not callable(getattr(algo, k))
        }
        core = getattr(algo, "core", None)
        if core is not None:
            row["core"] = dataclasses.astuple(core)
        out.append((sid, sorted((k, repr(v)) for k, v in row.items())))
    return out


CASES = []
for schedule in ("sync", "worst", "fixed"):
    sched = {"name": schedule}
    if schedule == "fixed":
        sched["length"] = "3/2"
    for algorithm in ("ca-arrow", "ca-arrow-ft", "ao-arrow"):
        CASES.append(ScenarioSpec(
            algorithm=algorithm, n=4, max_slot=2, rho="1/2", horizon=400,
            schedule=sched,
        ))
        CASES.append(ScenarioSpec(
            algorithm=algorithm, n=6, max_slot=2, rho="7/8", horizon=400,
            schedule=sched, source={"name": "bursty"}, burst=3,
        ))
    CASES.append(ScenarioSpec(
        algorithm="abs", n=9, max_slot=2, rho=None, horizon=400,
        schedule=sched, source={"name": "none"},
    ))

# AO-ARRoW long-silence sync machinery: sparse arrivals leave silent
# gaps far beyond the sync threshold, so sync_wait/sync_tx engage.
for schedule in ("sync", "worst"):
    CASES.append(ScenarioSpec(
        algorithm="ao-arrow", n=4, max_slot=2, rho="1/64", horizon=3000,
        schedule={"name": schedule},
    ))

EXTRA = []


def ft_phantom(engine):
    """FT ring with a permanently silent member id: the ladder engages."""
    from repro.algorithms import FaultTolerantCAArrow
    from repro.arrivals import UniformRate
    from repro.core import Simulator
    from repro.timing import worst_case_for

    fleet = {i: FaultTolerantCAArrow(i, 4, 2) for i in (1, 2, 3)}
    return Simulator(
        fleet, worst_case_for(2), max_slot_length=2, engine=engine,
        arrival_source=UniformRate(rho="1/8", targets=[1, 2, 3],
                                   assumed_cost=2),
    )


def ft_conflict(engine):
    """Conflict-mode claims: pre-desynchronized turn views, staggered
    B_k thresholds decide the winner."""
    from repro.algorithms import FaultTolerantCAArrow
    from repro.core import Simulator
    from repro.timing import Synchronous

    fleet = {i: FaultTolerantCAArrow(i, 3, 2) for i in (1, 2, 3)}
    for i, algo in fleet.items():
        algo.conflict_mode = True
        algo.state = "claim"
        algo.skip_count = 1
        algo.silent_run = 5
        algo.turn = i
    return Simulator(
        fleet, Synchronous(), max_slot_length=2, engine=engine,
        initial_packets=2,
    )


EXTRA = [("ft-phantom", ft_phantom, 4000), ("ft-conflict", ft_conflict, 3000)]

failures = 0
for spec in CASES:
    label = f"{spec.algorithm}/{spec.schedule['name']}/n={spec.n}"
    obj = spec.build(engine="object")
    bat = spec.build(engine="batch")
    assert bat.engine == "batch", (label, bat.engine_detail)
    obj.run(until_time=spec.horizon)
    bat.run(until_time=spec.horizon)
    fo, fb = fingerprint(obj), fingerprint(bat)
    ao, ab = algo_state(obj), algo_state(bat)
    if fo != fb or ao != ab:
        failures += 1
        print(f"FAIL {label}")
        if fo != fb:
            for i, (a, b) in enumerate(zip(fo, fb)):
                if a != b:
                    print(f"  fingerprint[{i}]:\n    obj={a}\n    bat={b}")
        if ao != ab:
            for (sa, ra), (sb, rb) in zip(ao, ab):
                if ra != rb:
                    diff = [(x, y) for x, y in zip(ra, rb) if x != y]
                    print(f"  station {sa}: {diff}")
    else:
        print(f"ok   {label}  events={obj.events_processed}")

for label, build, horizon in EXTRA:
    obj, bat = build("object"), build("batch")
    assert bat.engine == "batch", (label, bat.engine_detail)
    obj.run(until_time=horizon)
    bat.run(until_time=horizon)
    fo, fb = fingerprint(obj), fingerprint(bat)
    ao, ab = algo_state(obj), algo_state(bat)
    if fo != fb or ao != ab:
        failures += 1
        print(f"FAIL {label}")
        if fo != fb:
            for i, (a, b) in enumerate(zip(fo, fb)):
                if a != b:
                    print(f"  fingerprint[{i}]:\n    obj={a}\n    bat={b}")
        for (sa, ra), (sb, rb) in zip(ao, ab):
            if ra != rb:
                diff = [(x, y) for x, y in zip(ra, rb) if x != y]
                print(f"  station {sa}: {diff}")
    else:
        extra = {}
        for sid in obj.station_ids:
            stats = obj.stations[sid].algorithm.stats
            for key in ("skips", "recoveries_claimed", "unexpected_busy",
                        "sync_signals_sent"):
                if hasattr(stats, key):
                    extra[key] = extra.get(key, 0) + getattr(stats, key)
        print(f"ok   {label}  events={obj.events_processed}  {extra}")

print("failures:", failures)
sys.exit(1 if failures else 0)
