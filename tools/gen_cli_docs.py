#!/usr/bin/env python3
"""Generate docs/cli.md from the live argparse tree.

The reference is *generated*, never hand-edited: every command,
subcommand, positional and flag is walked out of ``repro.cli
.build_parser()``, so the page cannot drift from the code.  CI runs
``--check`` to fail the build whenever a flag changes without the
page being regenerated.

Usage::

    PYTHONPATH=src python tools/gen_cli_docs.py            # rewrite docs/cli.md
    PYTHONPATH=src python tools/gen_cli_docs.py --check    # exit 1 if stale
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import build_parser  # noqa: E402

OUTPUT = ROOT / "docs" / "cli.md"

HEADER = """\
# CLI reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: PYTHONPATH=src python tools/gen_cli_docs.py -->

Every command of `python -m repro`, generated from the argparse tree
(so this page cannot drift from the code; CI checks it is current).
Start with [../README.md](../README.md) for task-oriented examples;
the deeper story behind each flag lives in the linked topic pages —
[scenarios.md](scenarios.md), [experiments.md](experiments.md),
[observability.md](observability.md), [tracing.md](tracing.md),
[performance.md](performance.md), [vectorization.md](vectorization.md).
"""


def subcommands(
    parser: argparse.ArgumentParser,
) -> List[Tuple[str, argparse.ArgumentParser]]:
    """(name, parser) for each subcommand, in declaration order."""
    found: List[Tuple[str, argparse.ArgumentParser]] = []
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            seen = set()
            for name, sub in action.choices.items():
                if id(sub) not in seen:  # aliases share the parser
                    seen.add(id(sub))
                    found.append((name, sub))
    return found


def flag_rows(parser: argparse.ArgumentParser) -> List[Tuple[str, str]]:
    """(rendered invocation, help) for each argument of one parser."""
    rows: List[Tuple[str, str]] = []
    for action in parser._actions:
        if isinstance(action, (argparse._SubParsersAction, argparse._HelpAction)):
            continue
        if action.option_strings:
            name = ", ".join(action.option_strings)
            if action.nargs != 0:
                metavar = action.metavar or (
                    "{" + ",".join(map(str, action.choices)) + "}"
                    if action.choices
                    else action.dest.upper()
                )
                name = f"{name} {metavar}"
        else:
            name = action.metavar or action.dest
            if action.choices and not action.metavar:
                name = "{" + ",".join(map(str, action.choices)) + "}"
        help_text = " ".join((action.help or "").split())
        if action.default not in (None, False, argparse.SUPPRESS) and (
            "%(default)" not in (action.help or "")
        ):
            help_text = (
                f"{help_text} (default: `{action.default}`)"
                if help_text
                else f"(default: `{action.default}`)"
            )
        help_text = help_text.replace("|", "\\|")
        rows.append((name, help_text))
    return rows


def walk(
    name: str, parser: argparse.ArgumentParser, depth: int
) -> Iterator[str]:
    """Markdown sections for one command and, recursively, its subcommands."""
    title = f"repro {name}" if name else "repro"
    yield f"{'#' * min(depth + 2, 6)} `{title}`"
    yield ""
    description = parser.description or ""
    if name:  # the root description duplicates the README lede
        blurb = " ".join(description.split())
        if blurb:
            yield blurb
            yield ""
    rows = flag_rows(parser)
    if rows:
        yield "| argument | description |"
        yield "|---|---|"
        for invocation, help_text in rows:
            yield f"| `{invocation}` | {help_text} |"
        yield ""
    children = subcommands(parser)
    if children and name:
        yield (
            "Subcommands: "
            + " · ".join(
                f"[`{child}`](#repro-{(name + ' ' + child).replace(' ', '-')})"
                for child, _ in children
            )
        )
        yield ""
    for child, sub in children:
        yield from walk(f"{name} {child}".strip(), sub, depth + 1)


def top_index(parser: argparse.ArgumentParser) -> Iterator[str]:
    yield "| command | what it does |"
    yield "|---|---|"
    for name, sub in subcommands(parser):
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                help_by_name = {
                    choice.dest: choice.help
                    for choice in action._choices_actions
                }
                blurb = help_by_name.get(name, "") or ""
                break
        anchor = f"#repro-{name}"
        yield f"| [`repro {name}`]({anchor}) | {blurb} |"
    yield ""


def render() -> str:
    parser = build_parser()
    lines: List[str] = [HEADER]
    lines.extend(top_index(parser))
    for name, sub in subcommands(parser):
        lines.extend(walk(name, sub, 1))
    text = "\n".join(lines)
    while "\n\n\n" in text:
        text = text.replace("\n\n\n", "\n\n")
    return text.rstrip() + "\n"


def main(argv: List[str]) -> int:
    check = "--check" in argv
    text = render()
    if check:
        current = OUTPUT.read_text(encoding="utf-8") if OUTPUT.exists() else ""
        if current != text:
            print(
                "docs/cli.md is stale — regenerate with:\n"
                "    PYTHONPATH=src python tools/gen_cli_docs.py",
                file=sys.stderr,
            )
            return 1
        print("docs/cli.md is up to date")
        return 0
    OUTPUT.write_text(text, encoding="utf-8")
    print(f"wrote {OUTPUT.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
