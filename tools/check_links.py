#!/usr/bin/env python3
"""Check that every relative Markdown link in the repo docs resolves.

Scans README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for inline
links/images ``[text](target)`` and verifies each relative target
exists on disk (anchors are stripped; absolute URLs and mailto: are
ignored).  Exits nonzero listing every broken link — CI runs this so a
renamed doc cannot leave dangling references behind.

Usage::

    python tools/check_links.py [repo-root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

DOC_GLOBS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/*.md")

# Inline link or image: [text](target "optional title").  Reference-style
# links are rare in this repo and intentionally out of scope.
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path) -> List[Path]:
    files: List[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return [f for f in files if f.is_file()]


def relative_targets(text: str) -> List[str]:
    """All relative link targets in a Markdown document, in order."""
    return [
        target
        for target in _LINK.findall(text)
        if not target.startswith(_SKIP_PREFIXES)
    ]


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """(document, target) pairs whose target does not exist on disk."""
    failures: List[Tuple[Path, str]] = []
    for doc in doc_files(root):
        for target in relative_targets(doc.read_text()):
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                failures.append((doc, target))
    return failures


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    docs = doc_files(root)
    if not docs:
        print(f"check_links: no documents found under {root}", file=sys.stderr)
        return 2
    failures = broken_links(root)
    checked = sum(len(relative_targets(doc.read_text())) for doc in docs)
    if failures:
        for doc, target in failures:
            print(f"BROKEN  {doc.relative_to(root)}: ({target})")
        print(f"check_links: {len(failures)} broken of {checked} relative links")
        return 1
    print(
        f"check_links: {checked} relative links across {len(docs)} documents, all resolve"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
