"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-use-pep517` and plain `python setup.py develop`
both work through this file; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
