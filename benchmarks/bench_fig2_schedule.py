"""Fig. 2: synchronous vs asynchronous transmission schedules.

The paper's figure shows three stations solving SST quickly under
synchrony while an asynchronous execution of the same protocol needs
more slots.  We regenerate both panels as ASCII timelines from real ABS
executions and assert the figure's quantitative moral: the asynchronous
run costs at least as many slots (and more wall-clock time) than the
synchronous one.
"""

from repro.algorithms import ABSLeaderElection
from repro.core import Simulator, Trace
from repro.timing import PerStationFixed, Synchronous
from repro.viz import render_timeline

from .reporting import emit

N, R_ASYNC = 3, 2


def _run(adversary, R):
    algos = {i: ABSLeaderElection(i, R) for i in range(1, N + 1)}
    trace = Trace(record_slots=True)
    sim = Simulator(
        algos, adversary, max_slot_length=R, trace=trace,
        keep_channel_history=True,
    )
    end = sim.run_until_success(max_events=200_000)
    assert end is not None
    # Let every station observe the outcome so the full schedule renders.
    sim.run(
        max_events=sim.events_processed + 200,
        stop_when=lambda s: all(a.is_done for a in algos.values()),
    )
    return sim, trace, end


def test_fig2_sync_vs_async_schedule(benchmark):
    def run():
        sync = _run(Synchronous(), R=1)
        asynchronous = _run(
            PerStationFixed({1: 1, 2: "3/2", 3: 2}), R=R_ASYNC
        )
        return sync, asynchronous

    (sync_sim, sync_trace, sync_end), (async_sim, async_trace, async_end) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    lines = [
        "Fig. 2: three stations solving SST (ABS)",
        "",
        f"-- synchronous execution (R = 1), SST solved at t = {sync_end} --",
        render_timeline(sync_trace, width=88),
        "",
        f"-- asynchronous execution (R = {R_ASYNC}, speeds 1 : 3/2 : 2), "
        f"SST solved at t = {async_end} --",
        render_timeline(async_trace, width=88),
    ]
    emit("fig2_schedules", lines)

    # The figure's moral: asynchrony does not come for free.
    assert async_end >= sync_end
    assert async_sim.max_slots_elapsed() >= sync_sim.max_slots_elapsed() - 1
    # Both panels really show per-slot feedback for all three stations.
    for trace in (sync_trace, async_trace):
        assert {record.station_id for record in trace.slots} == {1, 2, 3}
