"""Theorem 1: ABS solves SST in O(R^2 log n) slots.

Reproduced shape: at fixed R, measured slots grow ~ log n; at fixed n,
they grow ~ R^2; and every measured run sits below the explicit
constant-carrying bound of :func:`repro.analysis.abs_slot_upper_bound`.
The companion gap check (E13) relates measurement to the Theorem 2
formula lower bound.
"""

import math
from fractions import Fraction

from repro.algorithms import ABSLeaderElection
from repro.analysis import abs_slot_upper_bound, sst_lower_bound_slots
from repro.core import Simulator
from repro.timing import RandomUniform, Synchronous, worst_case_for

from .reporting import emit, table

NS = [2, 4, 8, 16, 32, 64, 128]
RS = [1, 2, 3, 4]


def _election_slots(n, R, adversary):
    algos = {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}
    sim = Simulator(algos, adversary, max_slot_length=R)
    end = sim.run_until_success(max_events=5_000_000)
    assert end is not None, f"ABS failed at n={n}, R={R}"
    return sim.max_slots_elapsed()


def test_scaling_in_n_and_r(benchmark):
    def run():
        measured = {}
        for R in RS:
            for n in NS:
                adversary = Synchronous() if R == 1 else worst_case_for(R)
                measured[(n, R)] = _election_slots(n, R, adversary)
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n in NS:
        row = [n]
        for R in RS:
            slots = measured[(n, R)]
            bound = abs_slot_upper_bound(n, R)
            row.append(f"{slots} (<= {bound})")
        rows.append(row)
    emit(
        "thm1_abs_scaling",
        ["Theorem 1: ABS slots to SST, measured (<= explicit bound)",
         "paper shape: ~ log n at fixed R, ~ R^2 at fixed n"]
        + table(["n \\ R"] + [f"R={R}" for R in RS], rows),
    )

    # Shape assertions.
    for n in NS:
        for R in RS:
            assert measured[(n, R)] <= abs_slot_upper_bound(n, R)
    # log n growth: n 128 vs 8 (16x) costs < 4x slots at any fixed R.
    for R in RS:
        assert measured[(128, R)] <= 4 * measured[(8, R)]
    # R^2 growth: R 4 vs 2 costs between 2x and 8x at fixed n.
    for n in (16, 64):
        ratio = measured[(n, 4)] / measured[(n, 2)]
        assert 1.5 < ratio < 8


def test_gap_to_lower_bound(benchmark):
    """E13: measured ABS cost vs the Theorem 2 formula lower bound.

    The paper proves the gap is at most O(R log R); we report the
    measured ratio and assert it stays within the R log R envelope
    times the (explicit) constants.
    """

    def run():
        out = []
        for n, r in [(16, 2), (64, 2), (64, 4), (128, 4)]:
            slots = _election_slots(n, r, worst_case_for(r))
            lb = sst_lower_bound_slots(n, r)
            out.append((n, r, slots, lb))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, r, slots, lb in results:
        ratio = float(slots) / float(lb)
        envelope = 60 * r * max(math.log2(r), 1)  # O(R log R) with slack
        rows.append((n, r, slots, f"{float(lb):.1f}", f"{ratio:.1f}",
                     f"{envelope:.0f}"))
    emit(
        "thm1_vs_thm2_gap",
        ["Upper vs lower bound gap (paper: O(R log R) factor)"]
        + table(["n", "r", "measured_slots", "lower_bound", "ratio",
                 "envelope"], rows),
    )
    for n, r, slots, lb in results:
        assert float(slots) / float(lb) <= 60 * r * max(math.log2(r), 1)
