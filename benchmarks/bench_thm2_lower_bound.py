"""Theorem 2: the mirror-execution adversary's forced slot counts.

The construction is run against ABS (the paper's own algorithm) across
``n`` and ``r``; every realized execution is replayed on the real
channel and verified success-free.  Reported shape: forced slots grow
with ``r log n / log r`` (the formula), sit at or above the formula
value, and never exceed ABS's Theorem 1 budget (a sanity sandwich).
"""

from repro.algorithms import ABSLeaderElection
from repro.analysis import abs_slot_upper_bound, sst_lower_bound_slots
from repro.lowerbounds import run_mirror_adversary, verify_mirror_execution

from .reporting import emit, table

CASES = [(8, 2), (32, 2), (128, 2), (32, 4), (128, 4), (128, 8), (512, 8)]


def test_mirror_adversary_sweep(benchmark):
    def run():
        out = []
        for n, r in CASES:
            factory = lambda sid, r=r: ABSLeaderElection(sid, r)  # noqa: E731
            result = run_mirror_adversary(factory, n, r)
            sim = verify_mirror_execution(factory, result)
            assert sim.channel.count_successes_up_to(sim.now) == 0
            out.append((n, r, result))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, r, result in results:
        formula = sst_lower_bound_slots(n, r)
        upper = abs_slot_upper_bound(n, r)
        rows.append(
            (
                n,
                r,
                len(result.phases),
                result.slots_forced,
                f"{float(formula):.1f}",
                upper,
                len(result.survivors),
            )
        )
    emit(
        "thm2_mirror_lower_bound",
        ["Theorem 2: mirror-execution adversary vs ABS",
         "forced slots sandwiched: formula lower bound <= measured <= Thm 1 bound",
         "every row's realized schedule replayed on the real channel: 0 successes"]
        + table(
            ["n", "r", "phases", "slots_forced", "formula_lb", "abs_ub",
             "survivors"],
            rows,
        ),
    )
    for n, r, result in results:
        assert result.slots_forced >= sst_lower_bound_slots(n, r)
        assert result.slots_forced <= abs_slot_upper_bound(n, r)
        assert len(result.survivors) >= 2


def test_forced_slots_grow_with_log_n(benchmark):
    def run():
        out = {}
        for n in (8, 64, 512):
            result = run_mirror_adversary(
                lambda sid: ABSLeaderElection(sid, 2), n, 2
            )
            out[n] = result.slots_forced
        return out

    forced = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "thm2_log_n_growth",
        ["Mirror adversary: forced slots vs n at r = 2"]
        + table(["n", "slots_forced"], sorted(forced.items())),
    )
    assert forced[64] >= forced[8]
    assert forced[512] >= forced[64]
