"""Packet latency vs injection rate (cf. the latency line of work [10]).

Not a paper table — a companion measurement the paper's related work
motivates: how the two ARRoW protocols trade latency, at identical
workloads, as the rate climbs toward 1.  Expected shape: CA-ARRoW's
round-robin keeps p50/p90 latency low and flat until high load;
AO-ARRoW pays its election and withholding overheads, with a visibly
heavier tail, and both curves blow up as rho -> 1 (Theorem 5's shadow).
"""

from repro.algorithms import AOArrow, CAArrow
from repro.analysis import summarize_latencies
from repro.arrivals import UniformRate
from repro.core import Simulator
from repro.timing import worst_case_for

from .reporting import emit, table

N, R = 3, 2
HORIZON = 15_000
RATES = ["1/4", "1/2", "3/4", "9/10"]


def _run(make_algos, rho):
    source = UniformRate(rho=rho, targets=list(range(1, N + 1)), assumed_cost=R)
    sim = Simulator(
        make_algos(), worst_case_for(R), R, arrival_source=source
    )
    sim.run(until_time=HORIZON)
    return summarize_latencies(sim.delivered_packets)


def test_latency_vs_rate(benchmark):
    def run():
        out = {}
        for rho in RATES:
            ca = _run(lambda: {i: CAArrow(i, N, R) for i in range(1, N + 1)}, rho)
            ao = _run(lambda: {i: AOArrow(i, N, R) for i in range(1, N + 1)}, rho)
            out[rho] = (ca, ao)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for rho, (ca, ao) in results.items():
        rows.append(
            (
                rho,
                f"{float(ca.median):.1f}",
                f"{float(ca.p90):.1f}",
                f"{float(ca.maximum):.1f}",
                f"{float(ao.median):.1f}",
                f"{float(ao.p90):.1f}",
                f"{float(ao.maximum):.1f}",
            )
        )
    emit(
        "latency_vs_rate",
        [f"Delivered-packet latency vs rho (n={N}, R={R}, horizon={HORIZON})",
         "columns: CA-ARRoW p50/p90/max vs AO-ARRoW p50/p90/max"]
        + table(
            ["rho", "CA p50", "CA p90", "CA max", "AO p50", "AO p90", "AO max"],
            rows,
        ),
    )
    for rho, (ca, ao) in results.items():
        assert ca.count > 0 and ao.count > 0
        # CA's control-message ring beats AO's elections on median latency.
        assert ca.median <= ao.median
    # Latency grows with the rate for both protocols.
    assert results["9/10"][0].p90 >= results["1/4"][0].p90
    assert results["9/10"][1].p90 >= results["1/4"][1].p90
