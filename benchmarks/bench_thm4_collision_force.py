"""Theorem 4: collision-avoidance without control messages is impossible.

The executable adversary is thrown at two collision-avoiding,
control-free disciplines (static TDMA and the synchronous RRW) across a
sweep of queue limits L, rates rho and asynchrony bounds R.  Every cell
must end in one horn of the dilemma: a *real, replayed* collision or a
queue exceeding L.  The mute strawman shows the queue-overflow horn.
"""

from repro.algorithms import NaiveTDMA, RRW
from repro.core import LISTEN, StationAlgorithm
from repro.lowerbounds import force_collision_or_overflow

from .reporting import emit, table


class Mute(StationAlgorithm):
    """Never transmits: the queue-overflow horn of the dilemma."""

    def first_action(self, ctx):
        return LISTEN

    def on_slot_end(self, ctx):
        return LISTEN


SWEEP = [
    ("NaiveTDMA", lambda sid: NaiveTDMA(sid, 2), 4, "1/2", 2),
    ("NaiveTDMA", lambda sid: NaiveTDMA(sid, 2), 16, "1/2", 2),
    ("NaiveTDMA", lambda sid: NaiveTDMA(sid, 2), 64, "1/5", 2),
    ("NaiveTDMA", lambda sid: NaiveTDMA(sid, 2), 16, "1/2", 4),
    ("RRW", lambda sid: RRW(sid, 2), 4, "1/2", 2),
    ("RRW", lambda sid: RRW(sid, 2), 16, "1/2", 2),
    ("RRW", lambda sid: RRW(sid, 2), 64, "1/5", 2),
    ("RRW", lambda sid: RRW(sid, 2), 16, "1/2", 4),
    ("Mute", lambda sid: Mute(), 16, "1/2", 2),
]


def test_dilemma_sweep(benchmark):
    def run():
        return [
            (
                name,
                L,
                rho,
                R,
                force_collision_or_overflow(
                    factory, queue_limit=L, rho=rho, max_slot_length=R
                ),
            )
            for name, factory, L, rho, R in SWEEP
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, L, rho, R, result in results:
        rows.append(
            (
                name,
                L,
                rho,
                R,
                result.outcome,
                result.start_slot,
                result.probe_s1.first_attempt_offset,
                result.probe_s2.first_attempt_offset,
                result.collision_time if result.collision_time else "-",
            )
        )
    emit(
        "thm4_collision_dilemma",
        ["Theorem 4: every collision-avoiding control-free algorithm loses",
         "outcome is a replayed real collision, or a queue past L"]
        + table(
            ["victim", "L", "rho", "R", "outcome", "S", "alpha", "beta",
             "collision_t"],
            rows,
        ),
    )
    for name, L, rho, R, result in results:
        if name == "Mute":
            assert result.outcome == "queue_exceeded"
        else:
            assert result.outcome == "collision_forced"
            s, a, b = (
                result.start_slot,
                result.probe_s1.first_attempt_offset,
                result.probe_s2.first_attempt_offset,
            )
            # The solved slot lengths satisfy the collision equation
            # exactly — the heart of the proof.
            assert (s + a) * result.slot_length_s1 == (s + b) * result.slot_length_s2
