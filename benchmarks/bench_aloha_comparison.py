"""Section I's Aloha comparison (experiment E12).

The paper contrasts its deterministic bounded-asynchrony protocols with
classical randomized Aloha: slotted Aloha is stable only at low rates
(classically ~1/e aggregate), while AO-/CA-ARRoW sustain every
rho < 1.  We sweep the injection rate and report the stability frontier
of each protocol on identical workloads.
"""

from repro.algorithms import CAArrow, SlottedAloha
from repro.analysis import assess_stability, estimate_msr
from repro.arrivals import UniformRate
from repro.core import Simulator, Trace
from repro.timing import Synchronous

from .reporting import emit, table

N = 4
HORIZON = 12_000
RATES = ["1/10", "1/4", "2/5", "3/5", "4/5", "19/20"]


def _run(make_algos, rho):
    trace = Trace(backlog_stride=8)
    source = UniformRate(rho=rho, targets=list(range(1, N + 1)), assumed_cost=1)
    sim = Simulator(
        make_algos(), Synchronous(), max_slot_length=1,
        arrival_source=source, trace=trace,
    )
    sim.run(until_time=HORIZON)
    samples = trace.backlog_series()
    samples.append((sim.now, sim.total_backlog))
    verdict = assess_stability(samples, HORIZON, tolerance=5)
    return sim, verdict


def test_rate_sweep_aloha_vs_arrow(benchmark):
    def run():
        out = {}
        for rho in RATES:
            aloha = _run(
                lambda: {
                    i: SlottedAloha(i, transmit_probability=1 / N, seed=7)
                    for i in range(1, N + 1)
                },
                rho,
            )
            arrow = _run(
                lambda: {i: CAArrow(i, N, 1) for i in range(1, N + 1)}, rho
            )
            out[rho] = (aloha, arrow)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for rho, ((aloha_sim, aloha_v), (arrow_sim, arrow_v)) in results.items():
        rows.append(
            (
                rho,
                "stable" if aloha_v.stable else "UNSTABLE",
                aloha_sim.total_backlog,
                "stable" if arrow_v.stable else "UNSTABLE",
                arrow_sim.total_backlog,
            )
        )
    emit(
        "aloha_vs_arrow_sweep",
        [f"Slotted Aloha (p=1/{N}) vs CA-ARRoW on identical workloads "
         f"(n={N}, R=1, horizon={HORIZON})",
         "paper: Aloha stabilizes only at low rates; ARRoW at every rho < 1"]
        + table(
            ["rho", "aloha", "aloha_backlog", "ca_arrow", "arrow_backlog"],
            rows,
        ),
    )
    # The crossover: ARRoW stable everywhere; Aloha loses well below 1.
    for rho, ((_, aloha_v), (_, arrow_v)) in results.items():
        assert arrow_v.stable
    assert results["1/10"][0][1].stable
    assert not results["4/5"][0][1].stable
    assert not results["19/20"][0][1].stable


def test_msr_estimates(benchmark):
    def run():
        aloha = estimate_msr(
            lambda: {
                i: SlottedAloha(i, transmit_probability=1 / N, seed=3)
                for i in range(1, N + 1)
            },
            Synchronous,
            max_slot_length=1,
            horizon=8000,
            low="1/10",
            high="9/10",
            iterations=4,
        )
        arrow = estimate_msr(
            lambda: {i: CAArrow(i, N, 1) for i in range(1, N + 1)},
            Synchronous,
            max_slot_length=1,
            horizon=8000,
            low="1/10",
            high="99/100",
            iterations=4,
        )
        return aloha, arrow

    aloha, arrow = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "aloha_vs_arrow_msr",
        ["Empirical MSR bisection (finite-horizon estimate)"]
        + table(
            ["protocol", "stable_at", "unstable_at", "estimate"],
            [
                ("slotted Aloha", aloha.lower, aloha.upper, f"{float(aloha.estimate):.2f}"),
                ("CA-ARRoW", arrow.lower, arrow.upper, f"{float(arrow.estimate):.2f}"),
            ],
        ),
    )
    assert arrow.estimate > aloha.estimate
    assert float(aloha.estimate) < 0.75
    assert float(arrow.estimate) > 0.85
