"""Ablations of the paper's design constants (DESIGN.md §5).

Each bench removes one load-bearing constant from an algorithm and
shows the resulting failure, justifying the paper's choice:

* **ABS's asymmetric thresholds** (3R vs 4R²+3R, boxes (3)/(4) of
  Fig. 3): made symmetric, identically-paced stations collide forever —
  the binary search loses its tie-breaker and SST livelocks.
* **CA-ARRoW's 2R gap** (Fig. 6): shrunk to one slot, the successor
  speaks before slower stations have observed the turn boundary; the
  ring's turn views desynchronize and the protocol breaks (deadlock
  and/or collisions, schedule-dependent).
* **AO-ARRoW's R-multiplied silence threshold** (boxes (7)/(9) of
  Fig. 5): shrunk below the longest legal in-election silence, waiting
  stations misread election pauses as dead air and fire sync signals
  into live elections — collisions on drained packets appear and
  latency degrades.
"""

from repro.algorithms import AOArrow, CAArrow
from repro.algorithms.abs_leader import ABSLeaderElection, AbsCore
from repro.arrivals import UniformRate
from repro.core import Simulator
from repro.timing import FixedLength, PerStationFixed, worst_case_for

from .reporting import emit, table


class _SymmetricABS(ABSLeaderElection):
    """ABS with the bit-1 threshold flattened to the bit-0 value."""

    def __init__(self, station_id, max_slot_length):
        super().__init__(station_id, max_slot_length)
        short = self.core._threshold0
        self.core = AbsCore(
            station_id=station_id,
            max_slot_length=max_slot_length,
            threshold0_override=short,
            threshold1_override=short,
        )


def test_abs_threshold_asymmetry_is_load_bearing(benchmark):
    def run():
        n, R = 4, 2
        out = {}
        for name, factory in [
            ("paper (3R / 4R^2+3R)", lambda sid: ABSLeaderElection(sid, R)),
            ("ablated (3R / 3R)", lambda sid: _SymmetricABS(sid, R)),
        ]:
            algos = {i: factory(i) for i in range(1, n + 1)}
            sim = Simulator(algos, FixedLength(R), max_slot_length=R)
            solved = sim.run_until_success(max_events=50_000)
            out[name] = (solved, sim.channel.stats.collisions,
                         sim.max_slots_elapsed())
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, solved if solved is not None else "NEVER", collisions, slots)
        for name, (solved, collisions, slots) in results.items()
    ]
    emit(
        "ablation_abs_thresholds",
        ["Ablation: ABS listening-threshold asymmetry (n=4, all slots = R = 2)",
         "symmetric thresholds lose the bit tie-breaker -> perpetual collisions"]
        + table(["variant", "SST solved at", "collisions", "slots"], rows),
    )
    paper = results["paper (3R / 4R^2+3R)"]
    ablated = results["ablated (3R / 3R)"]
    assert paper[0] is not None and paper[1] < 10
    assert ablated[0] is None and ablated[1] > 1000


def test_ca_gap_is_load_bearing(benchmark):
    def run():
        n, R = 3, 2
        out = {}
        for name, gap in [("paper (2R slots)", None), ("ablated (1 slot)", 1)]:
            algos = {
                i: CAArrow(i, n, R, gap_slots_override=gap)
                for i in range(1, n + 1)
            }
            source = UniformRate(rho="3/5", targets=[1, 2, 3], assumed_cost=R)
            sim = Simulator(
                algos, PerStationFixed({1: 2, 2: 1, 3: "3/2"}), R,
                arrival_source=source,
            )
            sim.run(until_time=4000)
            out[name] = (
                len(sim.delivered_packets),
                sim.total_backlog,
                sim.channel.stats.collisions,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, delivered, backlog, collisions)
        for name, (delivered, backlog, collisions) in results.items()
    ]
    emit(
        "ablation_ca_gap",
        ["Ablation: CA-ARRoW inter-turn gap (n=3, skewed fixed speeds, R=2)",
         "a sub-2R gap desynchronizes turn views -> ring breaks"]
        + table(["variant", "delivered", "backlog", "collisions"], rows),
    )
    paper = results["paper (2R slots)"]
    ablated = results["ablated (1 slot)"]
    assert paper[2] == 0 and paper[1] < 50
    broke = ablated[2] > 0 or ablated[0] < paper[0] // 10
    assert broke, "sub-2R gap unexpectedly survived"


def test_ao_sync_threshold_is_load_bearing(benchmark):
    def run():
        n, R = 3, 2
        out = {}
        for name, shrink in [("paper (R-margined)", False), ("ablated (tiny)", True)]:
            algos = {i: AOArrow(i, n, R) for i in range(1, n + 1)}
            if shrink:
                for algo in algos.values():
                    algo.sync_threshold = 6   # < one election's silence
                    algo.sync_extra = 12
            source = UniformRate(rho="3/5", targets=[1, 2, 3], assumed_cost=R)
            sim = Simulator(
                algos, worst_case_for(R), R, arrival_source=source
            )
            sim.run(until_time=8000)
            drain_collisions = sum(
                algos[i].stats.drain_collisions for i in algos
            )
            out[name] = (
                len(sim.delivered_packets),
                sim.total_backlog,
                sim.channel.stats.collisions,
                drain_collisions,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, delivered, backlog, collisions, drains)
        for name, (delivered, backlog, collisions, drains) in results.items()
    ]
    emit(
        "ablation_ao_sync_threshold",
        ["Ablation: AO-ARRoW long-silence threshold (n=3, R=2, rho=3/5)",
         "an un-margined threshold fires sync signals into live elections"]
        + table(
            ["variant", "delivered", "backlog", "collisions", "drain_coll"],
            rows,
        ),
    )
    paper = results["paper (R-margined)"]
    ablated = results["ablated (tiny)"]
    # The ablated variant misfires: strictly more channel damage
    # (collisions, incl. on drain) or materially worse delivery.
    worse = (
        ablated[2] > paper[2]
        or ablated[3] > paper[3]
        or ablated[0] < paper[0] - 50
        or ablated[1] > paper[1] + 50
    )
    assert worse, "tiny sync threshold unexpectedly harmless"
