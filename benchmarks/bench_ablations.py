"""Ablations of the paper's design constants (DESIGN.md §5).

Each bench removes one load-bearing constant from an algorithm and
shows the resulting failure, justifying the paper's choice:

* **ABS's asymmetric thresholds** (3R vs 4R²+3R, boxes (3)/(4) of
  Fig. 3): made symmetric, identically-paced stations collide forever —
  the binary search loses its tie-breaker and SST livelocks.
* **CA-ARRoW's 2R gap** (Fig. 6): shrunk to one slot, the successor
  speaks before slower stations have observed the turn boundary; the
  ring's turn views desynchronize and the protocol breaks (deadlock
  and/or collisions, schedule-dependent).
* **AO-ARRoW's R-multiplied silence threshold** (boxes (7)/(9) of
  Fig. 5): shrunk below the longest legal in-election silence, waiting
  stations misread election pauses as dead air and fire sync signals
  into live elections — collisions on drained packets appear and
  latency degrades.

The ablated variants are registered as bench-local scenario algorithms
(``abs-symmetric``, ``ca-arrow-gap1``, ``ao-arrow-tinysync``), so each
paper-vs-ablated pair is just two :class:`~repro.scenarios.ScenarioSpec`
values differing in the ``algorithm`` field.
"""

from repro.algorithms import AOArrow, CAArrow
from repro.algorithms.abs_leader import ABSLeaderElection, AbsCore
from repro.scenarios import ALGORITHMS, ScenarioSpec

from .reporting import emit, table


class _SymmetricABS(ABSLeaderElection):
    """ABS with the bit-1 threshold flattened to the bit-0 value."""

    def __init__(self, station_id, max_slot_length):
        super().__init__(station_id, max_slot_length)
        short = self.core._threshold0
        self.core = AbsCore(
            station_id=station_id,
            max_slot_length=max_slot_length,
            threshold0_override=short,
            threshold1_override=short,
        )


@ALGORITHMS.register("abs-symmetric", kind="sst", family="abs", replace=True,
                     summary="ABLATED ABS: both thresholds = 3R (bench-local)")
def _abs_symmetric(spec):
    return {i: _SymmetricABS(i, spec.max_slot) for i in range(1, spec.n + 1)}


@ALGORITHMS.register("ca-arrow-gap1", kind="dynamic", family="ca-arrow",
                     replace=True,
                     summary="ABLATED CA-ARRoW: 1-slot gap (bench-local)")
def _ca_arrow_gap1(spec):
    return {
        i: CAArrow(i, spec.n, spec.max_slot, gap_slots_override=1)
        for i in range(1, spec.n + 1)
    }


@ALGORITHMS.register("ao-arrow-tinysync", kind="dynamic", family="ao-arrow",
                     replace=True,
                     summary="ABLATED AO-ARRoW: un-margined silence threshold")
def _ao_arrow_tinysync(spec):
    fleet = {i: AOArrow(i, spec.n, spec.max_slot) for i in range(1, spec.n + 1)}
    for algo in fleet.values():
        algo.sync_threshold = 6   # < one election's silence
        algo.sync_extra = 12
    return fleet


def test_abs_threshold_asymmetry_is_load_bearing(benchmark):
    def run():
        out = {}
        for name, algorithm in [
            ("paper (3R / 4R^2+3R)", "abs"),
            ("ablated (3R / 3R)", "abs-symmetric"),
        ]:
            spec = ScenarioSpec(
                algorithm=algorithm, n=4, max_slot=2,
                schedule={"name": "fixed", "length": 2},
            )
            sim = spec.build()
            solved = sim.run_until_success(max_events=50_000)
            out[name] = (solved, sim.channel.stats.collisions,
                         sim.max_slots_elapsed())
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, solved if solved is not None else "NEVER", collisions, slots)
        for name, (solved, collisions, slots) in results.items()
    ]
    emit(
        "ablation_abs_thresholds",
        ["Ablation: ABS listening-threshold asymmetry (n=4, all slots = R = 2)",
         "symmetric thresholds lose the bit tie-breaker -> perpetual collisions"]
        + table(["variant", "SST solved at", "collisions", "slots"], rows),
    )
    paper = results["paper (3R / 4R^2+3R)"]
    ablated = results["ablated (3R / 3R)"]
    assert paper[0] is not None and paper[1] < 10
    assert ablated[0] is None and ablated[1] > 1000


def test_ca_gap_is_load_bearing(benchmark):
    def run():
        out = {}
        for name, algorithm in [
            ("paper (2R slots)", "ca-arrow"),
            ("ablated (1 slot)", "ca-arrow-gap1"),
        ]:
            spec = ScenarioSpec(
                algorithm=algorithm, n=3, max_slot=2,
                schedule={"name": "per-station-fixed",
                          "lengths": {"1": 2, "2": 1, "3": "3/2"}},
                rho="3/5",
                horizon=4000,
            )
            sim = spec.build()
            sim.run(until_time=spec.horizon)
            out[name] = (
                len(sim.delivered_packets),
                sim.total_backlog,
                sim.channel.stats.collisions,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, delivered, backlog, collisions)
        for name, (delivered, backlog, collisions) in results.items()
    ]
    emit(
        "ablation_ca_gap",
        ["Ablation: CA-ARRoW inter-turn gap (n=3, skewed fixed speeds, R=2)",
         "a sub-2R gap desynchronizes turn views -> ring breaks"]
        + table(["variant", "delivered", "backlog", "collisions"], rows),
    )
    paper = results["paper (2R slots)"]
    ablated = results["ablated (1 slot)"]
    assert paper[2] == 0 and paper[1] < 50
    broke = ablated[2] > 0 or ablated[0] < paper[0] // 10
    assert broke, "sub-2R gap unexpectedly survived"


def test_ao_sync_threshold_is_load_bearing(benchmark):
    def run():
        out = {}
        for name, algorithm in [
            ("paper (R-margined)", "ao-arrow"),
            ("ablated (tiny)", "ao-arrow-tinysync"),
        ]:
            spec = ScenarioSpec(
                algorithm=algorithm, n=3, max_slot=2, schedule="worst",
                rho="3/5", horizon=8000,
            )
            sim = spec.build()
            sim.run(until_time=spec.horizon)
            drain_collisions = sum(
                sim.algorithm(i).stats.drain_collisions
                for i in sim.station_ids
            )
            out[name] = (
                len(sim.delivered_packets),
                sim.total_backlog,
                sim.channel.stats.collisions,
                drain_collisions,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, delivered, backlog, collisions, drains)
        for name, (delivered, backlog, collisions, drains) in results.items()
    ]
    emit(
        "ablation_ao_sync_threshold",
        ["Ablation: AO-ARRoW long-silence threshold (n=3, R=2, rho=3/5)",
         "an un-margined threshold fires sync signals into live elections"]
        + table(
            ["variant", "delivered", "backlog", "collisions", "drain_coll"],
            rows,
        ),
    )
    paper = results["paper (R-margined)"]
    ablated = results["ablated (tiny)"]
    # The ablated variant misfires: strictly more channel damage
    # (collisions, incl. on drain) or materially worse delivery.
    worse = (
        ablated[2] > paper[2]
        or ablated[3] > paper[3]
        or ablated[0] < paper[0] - 50
        or ablated[1] > paper[1] + 50
    )
    assert worse, "tiny sync threshold unexpectedly harmless"
