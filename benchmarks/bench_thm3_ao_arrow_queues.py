"""Theorem 3: AO-ARRoW's queue-cost bound L across the parameter space.

For every (n, R, rho) cell: run AO-ARRoW under the worst-case cyclic
slot adversary with a bursty admissible workload, record the peak
backlog cost (packets x R, the conservative cost reading) and compare
against the closed-form ``L``.  Reproduced shape: measured peaks are
bounded, far below ``L`` (the paper's bound is loose by design), and
degrade as ``1/(1 - rho)`` when rho -> 1.
"""

from fractions import Fraction

from repro.algorithms import AOArrow
from repro.analysis import ao_queue_bound_L, assess_stability
from repro.arrivals import BurstyRate
from repro.core import Simulator, Trace
from repro.timing import Synchronous, worst_case_for

from .reporting import emit, table

GRID = [
    (2, 1, "1/2"), (2, 2, "1/2"), (4, 2, "1/2"),
    (2, 2, "3/10"), (2, 2, "7/10"), (2, 2, "9/10"),
    (4, 4, "1/2"), (8, 2, "1/2"),
]
HORIZON = 20_000
BURST = 3


def _run_cell(n, R, rho):
    algos = {i: AOArrow(i, n, R) for i in range(1, n + 1)}
    adversary = Synchronous() if R == 1 else worst_case_for(R)
    source = BurstyRate(
        rho=rho, burst_size=BURST, targets=list(range(1, n + 1)), assumed_cost=R
    )
    trace = Trace(backlog_stride=4)
    sim = Simulator(
        algos, adversary, max_slot_length=R, arrival_source=source, trace=trace
    )
    sim.run(until_time=HORIZON)
    samples = trace.backlog_series()
    samples.append((sim.now, sim.total_backlog))
    verdict = assess_stability(samples, HORIZON, tolerance=5)
    return sim, trace, verdict


def test_queue_bound_grid(benchmark):
    def run():
        return {(n, R, rho): _run_cell(n, R, rho) for n, R, rho in GRID}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    burstiness = BURST * 2  # burst_size packets at assumed cost R = 2 avg
    for (n, R, rho), (sim, trace, verdict) in results.items():
        bound = ao_queue_bound_L(n, R, rho, burstiness, R)
        peak_cost = trace.max_backlog * Fraction(R)
        rows.append(
            (
                n,
                R,
                rho,
                "stable" if verdict.stable else "UNSTABLE",
                trace.max_backlog,
                float(peak_cost),
                f"{float(bound):.0f}",
                len(sim.delivered_packets),
            )
        )
    emit(
        "thm3_ao_queue_bounds",
        ["Theorem 3: AO-ARRoW peak queue cost vs closed-form bound L",
         f"bursty workload (bursts of {BURST}), worst-case slot adversary"]
        + table(
            ["n", "R", "rho", "verdict", "peak_pkts", "peak_cost", "L",
             "delivered"],
            rows,
        ),
    )
    for (n, R, rho), (sim, trace, verdict) in results.items():
        assert verdict.stable, f"unstable at n={n} R={R} rho={rho}"
        assert trace.max_backlog * Fraction(R) <= ao_queue_bound_L(
            n, R, rho, burstiness, R
        )


def test_backlog_degrades_toward_rate_one(benchmark):
    """The 1/(1-rho) shape: peaks grow as rho -> 1."""

    def run():
        peaks = {}
        for rho in ("1/2", "3/4", "9/10", "19/20"):
            _, trace, _ = _run_cell(3, 2, rho)
            peaks[rho] = trace.max_backlog
        return peaks

    peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "thm3_rho_degradation",
        ["AO-ARRoW peak backlog vs rho (n=3, R=2): 1/(1-rho) shape"]
        + table(["rho", "peak_backlog"], peaks.items()),
    )
    assert peaks["19/20"] >= peaks["1/2"]
