"""Theorem 3: AO-ARRoW's queue-cost bound L across the parameter space.

For every (n, R, rho) cell: run AO-ARRoW under the worst-case cyclic
slot adversary with a bursty admissible workload, record the peak
backlog cost (packets x R, the conservative cost reading) and compare
against the closed-form ``L``.  Reproduced shape: measured peaks are
bounded, far below ``L`` (the paper's bound is loose by design), and
degrade as ``1/(1 - rho)`` when rho -> 1.

The grid is declared as :class:`~repro.scenarios.ScenarioSpec` values —
the same declarative form the CLI and ``scenarios/*.json`` files use —
so every cell is cache-keyed by its canonical JSON rather than by
bytecode fingerprints.  The cells are independent, so the grid routes
through the :mod:`repro.service` layer onto the :mod:`repro.exec`
engine: ``REPRO_BENCH_JOBS=4`` fans it out over
four workers with bit-identical results, and completed cells are
memoized in ``.repro-cache/`` (``REPRO_BENCH_NO_CACHE=1`` to bypass).
The artifact's ``meta`` block records wall time, jobs, and cache
counts.
"""

from fractions import Fraction

from repro.analysis import ExperimentCell, ao_queue_bound_L, run_grid_report
from repro.scenarios import ScenarioSpec

from .reporting import emit, grid_meta, service_grid, table

GRID = [
    (2, 1, "1/2"), (2, 2, "1/2"), (4, 2, "1/2"),
    (2, 2, "3/10"), (2, 2, "7/10"), (2, 2, "9/10"),
    (4, 4, "1/2"), (8, 2, "1/2"),
]
HORIZON = 20_000
BURST = 3
STRIDE = 4


def _spec(n, R, rho):
    return ScenarioSpec(
        algorithm="ao-arrow",
        n=n,
        max_slot=R,
        schedule="worst",
        rho=rho,
        burst=BURST,
        horizon=HORIZON,
        name=f"ao-arrow n={n} R={R} rho={rho}",
        labels={"n": str(n), "R": str(R), "rho": rho},
    )


def _cell(n, R, rho):
    return ExperimentCell.from_spec(_spec(n, R, rho))


def _run_cell(n, R, rho):
    """One cell, engine semantics (kept for ad-hoc timing recipes)."""
    return run_grid_report([_cell(n, R, rho)], backlog_stride=STRIDE).results[0]


def test_queue_bound_grid(benchmark):
    def run():
        return service_grid(
            [_spec(n, R, rho) for n, R, rho in GRID],
            backlog_stride=STRIDE,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    burstiness = BURST * 2  # burst_size packets at assumed cost R = 2 avg
    for (n, R, rho), result in zip(GRID, report.results):
        bound = ao_queue_bound_L(n, R, rho, burstiness, R)
        peak_cost = result.peak_backlog * Fraction(R)
        rows.append(
            (
                n,
                R,
                rho,
                "stable" if result.stable else "UNSTABLE",
                result.peak_backlog,
                float(peak_cost),
                f"{float(bound):.0f}",
                result.metrics.delivered,
            )
        )
    emit(
        "thm3_ao_queue_bounds",
        ["Theorem 3: AO-ARRoW peak queue cost vs closed-form bound L",
         f"bursty workload (bursts of {BURST}), worst-case slot adversary"]
        + table(
            ["n", "R", "rho", "verdict", "peak_pkts", "peak_cost", "L",
             "delivered"],
            rows,
        ),
        meta=grid_meta(report),
    )
    for (n, R, rho), result in zip(GRID, report.results):
        assert result.stable, f"unstable at n={n} R={R} rho={rho}"
        assert result.peak_backlog * Fraction(R) <= ao_queue_bound_L(
            n, R, rho, burstiness, R
        )


def test_backlog_degrades_toward_rate_one(benchmark):
    """The 1/(1-rho) shape: peaks grow as rho -> 1."""
    rhos = ("1/2", "3/4", "9/10", "19/20")

    def run():
        return service_grid(
            [_spec(3, 2, rho) for rho in rhos],
            backlog_stride=STRIDE,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    peaks = {
        rho: result.peak_backlog for rho, result in zip(rhos, report.results)
    }
    emit(
        "thm3_rho_degradation",
        ["AO-ARRoW peak backlog vs rho (n=3, R=2): 1/(1-rho) shape"]
        + table(["rho", "peak_backlog"], peaks.items()),
        meta=grid_meta(report),
    )
    assert peaks["19/20"] >= peaks["1/2"]
