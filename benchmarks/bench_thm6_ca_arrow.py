"""Theorem 6: CA-ARRoW is universally stable and collision-free.

Same grid as the AO-ARRoW bench, plus the headline invariant checked
on every cell: the channel's collision counter is exactly zero.  The
peak queue cost is compared to the paper's ``2nR^2(rho+1)/(1-rho)``
bound.

Like the Theorem 3 bench, the grid is declared as
:class:`~repro.scenarios.ScenarioSpec` values (canonical-JSON cache
keys, replayable via ``repro scenario run``) and routes through the
:mod:`repro.service` layer onto the :mod:`repro.exec` engine — ``REPRO_BENCH_JOBS=4`` parallelizes it
bit-identically, and ``.repro-cache/`` memoizes completed cells
(``REPRO_BENCH_NO_CACHE=1`` to bypass).
"""

from fractions import Fraction

from repro.analysis import ExperimentCell, ca_queue_bound_L, run_grid_report
from repro.scenarios import ScenarioSpec

from .reporting import emit, grid_meta, service_grid, table

GRID = [
    (2, 1, "1/2"), (2, 2, "1/2"), (4, 2, "1/2"),
    (2, 2, "3/10"), (2, 2, "7/10"), (2, 2, "9/10"),
    (4, 4, "1/2"), (8, 2, "1/2"),
]
HORIZON = 20_000
BURST = 3
STRIDE = 4


def _spec(n, R, rho, algorithm="ca-arrow"):
    return ScenarioSpec(
        algorithm=algorithm,
        n=n,
        max_slot=R,
        schedule="worst",
        rho=rho,
        burst=BURST,
        horizon=HORIZON,
        name=f"{algorithm} n={n} R={R} rho={rho}",
        labels={"algorithm": algorithm, "n": str(n), "R": str(R), "rho": rho},
    )


def _cell(n, R, rho, algorithm="ca-arrow"):
    return ExperimentCell.from_spec(_spec(n, R, rho, algorithm))


def _run_cell(n, R, rho):
    """One cell, engine semantics (kept for ad-hoc timing recipes)."""
    return run_grid_report([_cell(n, R, rho)], backlog_stride=STRIDE).results[0]


def test_queue_bound_and_collision_freedom_grid(benchmark):
    def run():
        return service_grid(
            [_spec(n, R, rho) for n, R, rho in GRID],
            backlog_stride=STRIDE,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    burstiness = BURST * 2
    for (n, R, rho), result in zip(GRID, report.results):
        bound = ca_queue_bound_L(n, R, rho, burstiness)
        rows.append(
            (
                n,
                R,
                rho,
                "stable" if result.stable else "UNSTABLE",
                result.peak_backlog,
                f"{float(bound):.0f}",
                result.metrics.collisions,
                result.metrics.delivered,
            )
        )
    emit(
        "thm6_ca_queue_bounds",
        ["Theorem 6: CA-ARRoW peak queue cost vs 2nR^2(rho+1)/(1-rho)",
         "collision column must be identically 0"]
        + table(
            ["n", "R", "rho", "verdict", "peak_pkts", "bound", "collisions",
             "delivered"],
            rows,
        ),
        meta=grid_meta(report),
    )
    for (n, R, rho), result in zip(GRID, report.results):
        assert result.stable
        assert result.metrics.collisions == 0
        assert result.peak_backlog * Fraction(R) <= ca_queue_bound_L(
            n, R, rho, burstiness
        )


def test_ca_vs_ao_overhead(benchmark):
    """Design-axis ablation: control messages buy lower queue peaks.

    CA-ARRoW spends channel time on empty signals but avoids election
    overhead; AO-ARRoW pays elections but sends no control traffic.
    The bench reports both peaks side by side on identical workloads.
    """
    rhos = ("1/2", "9/10")

    def run():
        specs = [_spec(3, 2, rho, algorithm) for rho in rhos
                 for algorithm in ("ca-arrow", "ao-arrow")]
        return service_grid(specs, backlog_stride=STRIDE)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    paired = dict(zip(rhos, zip(report.results[0::2], report.results[1::2])))
    rows = [
        (
            rho,
            ca.peak_backlog,
            ao.peak_backlog,
            ca.metrics.control_transmissions,
            ao.metrics.collisions,
        )
        for rho, (ca, ao) in paired.items()
    ]
    emit(
        "thm6_ca_vs_ao_ablation",
        ["Model-feature ablation at n=3, R=2 (identical workloads)",
         "CA pays control messages; AO pays election collisions"]
        + table(
            ["rho", "CA_peak", "AO_peak", "CA_ctrl_msgs", "AO_collisions"],
            rows,
        ),
        meta=grid_meta(report),
    )
    # Both bounded; CA's peaks should not exceed AO's by more than noise
    # (the paper's CA bound is asymptotically smaller).
    for rho, (ca, ao) in paired.items():
        assert ca.peak_backlog <= ao.peak_backlog + 10
