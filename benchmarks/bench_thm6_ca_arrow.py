"""Theorem 6: CA-ARRoW is universally stable and collision-free.

Same grid as the AO-ARRoW bench, plus the headline invariant checked
on every cell: the channel's collision counter is exactly zero.  The
peak queue cost is compared to the paper's ``2nR^2(rho+1)/(1-rho)``
bound.
"""

from fractions import Fraction

from repro.algorithms import CAArrow
from repro.analysis import assess_stability, ca_queue_bound_L
from repro.arrivals import BurstyRate
from repro.core import Simulator, Trace
from repro.timing import Synchronous, worst_case_for

from .reporting import emit, table

GRID = [
    (2, 1, "1/2"), (2, 2, "1/2"), (4, 2, "1/2"),
    (2, 2, "3/10"), (2, 2, "7/10"), (2, 2, "9/10"),
    (4, 4, "1/2"), (8, 2, "1/2"),
]
HORIZON = 20_000
BURST = 3


def _run_cell(n, R, rho):
    algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
    adversary = Synchronous() if R == 1 else worst_case_for(R)
    source = BurstyRate(
        rho=rho, burst_size=BURST, targets=list(range(1, n + 1)), assumed_cost=R
    )
    trace = Trace(backlog_stride=4)
    sim = Simulator(
        algos, adversary, max_slot_length=R, arrival_source=source, trace=trace
    )
    sim.run(until_time=HORIZON)
    samples = trace.backlog_series()
    samples.append((sim.now, sim.total_backlog))
    verdict = assess_stability(samples, HORIZON, tolerance=5)
    return sim, trace, verdict


def test_queue_bound_and_collision_freedom_grid(benchmark):
    def run():
        return {(n, R, rho): _run_cell(n, R, rho) for n, R, rho in GRID}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    burstiness = BURST * 2
    for (n, R, rho), (sim, trace, verdict) in results.items():
        bound = ca_queue_bound_L(n, R, rho, burstiness)
        rows.append(
            (
                n,
                R,
                rho,
                "stable" if verdict.stable else "UNSTABLE",
                trace.max_backlog,
                f"{float(bound):.0f}",
                sim.channel.stats.collisions,
                len(sim.delivered_packets),
            )
        )
    emit(
        "thm6_ca_queue_bounds",
        ["Theorem 6: CA-ARRoW peak queue cost vs 2nR^2(rho+1)/(1-rho)",
         "collision column must be identically 0"]
        + table(
            ["n", "R", "rho", "verdict", "peak_pkts", "bound", "collisions",
             "delivered"],
            rows,
        ),
    )
    for (n, R, rho), (sim, trace, verdict) in results.items():
        assert verdict.stable
        assert sim.channel.stats.collisions == 0
        assert trace.max_backlog * Fraction(R) <= ca_queue_bound_L(
            n, R, rho, burstiness
        )


def test_ca_vs_ao_overhead(benchmark):
    """Design-axis ablation: control messages buy lower queue peaks.

    CA-ARRoW spends channel time on empty signals but avoids election
    overhead; AO-ARRoW pays elections but sends no control traffic.
    The bench reports both peaks side by side on identical workloads.
    """
    from repro.algorithms import AOArrow

    def run():
        out = {}
        for rho in ("1/2", "9/10"):
            ca = _run_cell(3, 2, rho)
            algos = {i: AOArrow(i, 3, 2) for i in range(1, 4)}
            source = BurstyRate(
                rho=rho, burst_size=BURST, targets=[1, 2, 3], assumed_cost=2
            )
            trace = Trace(backlog_stride=4)
            sim = Simulator(
                algos, worst_case_for(2), max_slot_length=2,
                arrival_source=source, trace=trace,
            )
            sim.run(until_time=HORIZON)
            out[rho] = (ca[1].max_backlog, trace.max_backlog,
                        ca[0].channel.stats.control_transmissions,
                        sim.channel.stats.collisions)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (rho, ca_peak, ao_peak, ctrl, coll)
        for rho, (ca_peak, ao_peak, ctrl, coll) in results.items()
    ]
    emit(
        "thm6_ca_vs_ao_ablation",
        ["Model-feature ablation at n=3, R=2 (identical workloads)",
         "CA pays control messages; AO pays election collisions"]
        + table(
            ["rho", "CA_peak", "AO_peak", "CA_ctrl_msgs", "AO_collisions"],
            rows,
        ),
    )
    # Both bounded; CA's peaks should not exceed AO's by more than noise
    # (the paper's CA bound is asymptotically smaller).
    for rho, (ca_peak, ao_peak, _, _) in results.items():
        assert ca_peak <= ao_peak + 10
