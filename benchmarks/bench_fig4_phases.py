"""Fig. 4: AO-ARRoW's phase / subphase timeline.

The paper's timeline figure shows leader-election rounds accumulating
into subphases and phases separated by long silences, with a finite
number ``m`` of subphases per phase.  We run AO-ARRoW on a workload
with quiet gaps, reconstruct rounds/phases from the channel's success
record (Definitions 3-4) and render the timeline; assertions pin the
figure's structure: several rounds per phase, phases separated by the
injected silences, every delivery attributed to a round.
"""

from repro.algorithms import AOArrow
from repro.analysis import segment_rounds
from repro.arrivals import StaticSchedule
from repro.core import Simulator, Trace
from repro.timing import worst_case_for
from repro.viz import render_phases

from .reporting import emit

N, R = 3, 2


def _quiet_gap_workload():
    """Three activity bursts separated by silences far longer than any
    in-protocol gap, so they split phases."""
    arrivals = []
    for burst_start in (0, 2500, 5000):
        for offset, sid in [(0, 1), (0, 2), (1, 3), (2, 1), (3, 2), (4, 3)]:
            arrivals.append((burst_start + offset, sid))
    return StaticSchedule(sorted(arrivals))


def test_fig4_phase_timeline(benchmark):
    def run():
        algos = {i: AOArrow(i, N, R) for i in range(1, N + 1)}
        sim = Simulator(
            algos,
            worst_case_for(R),
            max_slot_length=R,
            arrival_source=_quiet_gap_workload(),
            trace=Trace(record_slots=False),
            keep_channel_history=True,
        )
        sim.run(until_time=7500)
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    phases = segment_rounds(sim, silence_gap=50)
    lines = [
        "Fig. 4: AO-ARRoW rounds/subphases/phases "
        f"(n={N}, R={R}, three bursts with quiet gaps)",
        "",
        render_phases(phases, width=90),
        "",
        f"delivered={len(sim.delivered_packets)}  backlog={sim.total_backlog}",
    ]
    for index, phase in enumerate(phases):
        winners = [round_segment.winner for round_segment in phase.rounds]
        lines.append(
            f"phase {index}: [{float(phase.start):8.1f}, {float(phase.end):8.1f})"
            f"  rounds={len(phase.rounds)}  winners={winners}"
        )
    emit("fig4_phases", lines)

    # Figure structure: >= 2 phases (quiet gaps split them), each with a
    # finite positive number of rounds (the paper's finite m).
    assert len(phases) >= 2
    for phase in phases:
        assert 1 <= len(phase.rounds) <= 40
    # All 18 injected packets delivered and attributed.
    assert len(sim.delivered_packets) == 18
    attributed = sum(
        round_segment.packets_delivered
        for phase in phases
        for round_segment in phase.rounds
    )
    assert attributed == 18
    assert sim.total_backlog == 0
