"""Shared table emission for the benchmark harness.

Every bench regenerates one of the paper's tables/figures (see the
experiment index in DESIGN.md).  Tables are printed to stdout (the
``-s`` pytest default makes them land in ``bench_output.txt``) and
mirrored into ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
reference stable artifacts.

Each report is *also* mirrored into ``benchmarks/results/<name>.json``
with the same values in machine-readable form, so bench trajectories
can be diffed across PRs without parsing fixed-width text.  The lines
returned by :func:`table` remember their structure (headers + cells);
:func:`emit` collects every table block it is handed — however the
caller concatenated title lines around it — and writes::

    {
      "name": "<report name>",
      "preamble": ["title line", ...],
      "tables": [{"headers": [...], "rows": [[...], ...]}, ...]
    }

Cells that are JSON-native (int/float/bool/str/None) are stored as-is;
anything else (exact :class:`~fractions.Fraction` values, enums) is
stored as the same string the text table prints.

A report may also carry a ``meta`` block (``emit(..., meta={...})``) of
timing/environment facts — wall seconds, jobs, cache hit counts.  Meta
is *identity-exempt*: ``repro bench diff`` reports its deltas but never
fails on them, and byte-identity of regenerated artifacts is promised
for the preamble + tables (and the whole ``.txt``), not for meta.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_jobs(default: int = 1) -> int:
    """Worker processes for benches that fan out on the exec pool.

    Controlled by ``REPRO_BENCH_JOBS`` (0 = one per core), so
    ``REPRO_BENCH_JOBS=4 pytest benchmarks/ --benchmark-only`` runs
    every adopted grid in parallel.  Results are bit-identical at any
    value — only wall time changes.
    """
    raw = os.environ.get("REPRO_BENCH_JOBS", "").strip()
    return int(raw) if raw else default


def bench_cache():
    """The shared content-addressed cache for bench grids.

    Enabled by default under ``.repro-cache/`` (so a re-run of an
    unchanged bench is near-instant); disable with
    ``REPRO_BENCH_NO_CACHE=1`` or point elsewhere with
    ``REPRO_BENCH_CACHE_DIR``.  Returns None when disabled.
    """
    if os.environ.get("REPRO_BENCH_NO_CACHE", "").strip():
        return None
    from repro.exec import ResultCache

    return ResultCache(os.environ.get("REPRO_BENCH_CACHE_DIR", ".repro-cache"))


def service_grid(specs: Sequence[Any], *, backlog_stride: int = 8):
    """Run a spec grid through the run-service layer.

    The bench-harness equivalent of ``repro grid``: the specs become a
    :class:`~repro.service.RunRequest` with the environment-derived
    bench options (``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_NO_CACHE`` /
    ``REPRO_BENCH_CACHE_DIR``) and execute on the one shared pipeline
    every other transport uses.  Returns the underlying
    :class:`~repro.analysis.GridReport`, so existing ``grid_meta`` /
    row-zipping call sites work unchanged — cache identity is
    preserved because cells are still keyed by spec canonical JSON.
    """
    from repro.service import RunOptions, RunRequest, execute

    options = RunOptions(
        jobs=bench_jobs(),
        cache=not os.environ.get("REPRO_BENCH_NO_CACHE", "").strip(),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE_DIR", ".repro-cache"),
        backlog_stride=backlog_stride,
    )
    request = RunRequest(specs=tuple(specs), command="grid", options=options)
    return execute(request).report


def grid_meta(report) -> Dict[str, Any]:
    """The standard ``meta`` block for a :class:`GridReport`-backed bench."""
    meta = {
        "wall_s": round(report.wall_s, 3),
        "jobs": report.jobs,
        "mode": report.mode,
        "cells": len(report.results),
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
    }
    health = getattr(report, "health", None)
    if health is not None:
        meta["health"] = health.as_dict()
    journal_hits = getattr(report, "journal_hits", 0)
    if journal_hits:
        meta["journal_hits"] = journal_hits
    failures = getattr(report, "failures", ())
    if failures:
        meta["failed_cells"] = [f.name for f in failures]
    return meta


class _TableBlock:
    """Structured payload behind one rendered table."""

    __slots__ = ("headers", "rows")

    def __init__(self, headers: List[str], rows: List[List[Any]]) -> None:
        self.headers = headers
        self.rows = rows

    def to_dict(self) -> Dict[str, Any]:
        return {"headers": self.headers, "rows": self.rows}


class _TableLine(str):
    """A rendered table line that remembers the block it came from.

    Being a plain ``str`` subclass keeps every existing call pattern
    (``["title"] + table(...)``, joining, printing) working unchanged
    while :func:`emit` can still recover the structure.
    """

    block: _TableBlock

    def __new__(cls, text: str, block: _TableBlock) -> "_TableLine":
        line = super().__new__(cls, text)
        line.block = block
        return line


def _json_cell(cell: Any) -> Any:
    """A cell as stored in the JSON mirror: native when possible."""
    if cell is None or isinstance(cell, (bool, int, float, str)):
        return cell
    return str(cell)


def emit(
    name: str, lines: Iterable[str], meta: Optional[Dict[str, Any]] = None
) -> str:
    """Print a named report block and persist it under results/.

    Writes both ``results/<name>.txt`` (the exact text) and
    ``results/<name>.json`` (the same values, machine-readable).
    ``meta``, when given, lands in the JSON only — timing/environment
    facts that ``repro bench diff`` reports but never fails on.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    materialized = list(lines)
    body = "\n".join(materialized)
    block = f"\n===== {name} =====\n{body}\n"
    print(block)
    (RESULTS_DIR / f"{name}.txt").write_text(body + "\n")

    tables: List[_TableBlock] = []
    preamble: List[str] = []
    for line in materialized:
        table_block = getattr(line, "block", None)
        if table_block is None:
            preamble.append(str(line))
        elif not tables or tables[-1] is not table_block:
            tables.append(table_block)
    document = {
        "name": name,
        "preamble": preamble,
        "tables": [t.to_dict() for t in tables],
    }
    if meta:
        document["meta"] = meta
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n"
    )
    _record_history(name, meta)
    return block


def _record_history(name: str, meta: Optional[Dict[str, Any]]) -> None:
    """Index this bench table in the run-history database (best-effort).

    Rides the standard ``meta`` block: the :func:`grid_meta` fields map
    straight onto history columns, anything else lands in ``extra``.
    """
    try:
        from repro.obs.artifacts import git_sha
        from repro.obs.history import record_completion
    except ImportError:
        return
    meta = dict(meta or {})
    health = meta.pop("health", None)
    record_completion(
        "bench",
        name,
        wall_s=meta.pop("wall_s", None),
        jobs=meta.pop("jobs", None),
        mode=meta.pop("mode", None),
        cells=meta.pop("cells", 0) or 0,
        cache_hits=meta.pop("cache_hits", 0) or 0,
        cache_misses=meta.pop("cache_misses", 0) or 0,
        journal_hits=meta.pop("journal_hits", 0) or 0,
        health=health if isinstance(health, dict) else None,
        git_sha=git_sha(),
        artifact_path=str(RESULTS_DIR / f"{name}.json"),
        extra=meta or None,
    )


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Fixed-width text table: headers + one line per row.

    The returned lines carry the structured block for the JSON mirror.
    """
    raw_rows = [list(row) for row in rows]
    materialized = [[str(cell) for cell in row] for row in raw_rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    block = _TableBlock(
        headers=[str(h) for h in headers],
        rows=[[_json_cell(cell) for cell in row] for row in raw_rows],
    )
    lines = [fmt(list(headers)), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in materialized)
    return [_TableLine(line, block) for line in lines]
