"""Shared table emission for the benchmark harness.

Every bench regenerates one of the paper's tables/figures (see the
experiment index in DESIGN.md).  Tables are printed to stdout (the
``-s`` pytest default makes them land in ``bench_output.txt``) and
mirrored into ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
reference stable artifacts.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a named report block and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n".join(lines)
    block = f"\n===== {name} =====\n{body}\n"
    print(block)
    (RESULTS_DIR / f"{name}.txt").write_text(body + "\n")
    return block


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Fixed-width text table: headers + one line per row."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in materialized)
    return lines
