"""Theorem 5: no algorithm is stable at injection rate exactly 1.

The starving adversary (never feed the current transmitter, rate
pinned to exactly 1 by unit transmit slots) is run against AO-ARRoW,
CA-ARRoW and the synchronous token ring, next to control runs at
rho = 3/4 on the *same* harness.  Reproduced shape: positive backlog
slope at rho = 1 for every algorithm, flat slope at rho < 1 — the
instability is the rate's fault, not the harness's.
"""

from repro.algorithms import AOArrow, CAArrow, MBTFLike
from repro.lowerbounds import measure_rate_one_instability

from .reporting import emit, table

HORIZON = 8000


def _families():
    return {
        "AO-ARRoW (R=2)": (lambda: {i: AOArrow(i, 3, 2) for i in range(1, 4)}, 2),
        "CA-ARRoW (R=2)": (lambda: {i: CAArrow(i, 3, 2) for i in range(1, 4)}, 2),
        "TokenRing (R=1)": (lambda: {i: MBTFLike(i, 3) for i in range(1, 4)}, 1),
    }


def test_rate_one_vs_control(benchmark):
    def run():
        out = {}
        for name, (make, R) in _families().items():
            at_one = measure_rate_one_instability(
                make(), max_slot_length=R, horizon=HORIZON, rho=1
            )
            control = measure_rate_one_instability(
                make(), max_slot_length=R, horizon=HORIZON, rho="3/4"
            )
            out[name] = (at_one, control)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, (at_one, control) in results.items():
        rows.append(
            (
                name,
                f"{at_one.slope:.4f}",
                at_one.final_backlog,
                f"{control.slope:.4f}",
                control.final_backlog,
            )
        )
    emit(
        "thm5_rate_one",
        ["Theorem 5: backlog growth at rho = 1 vs control at rho = 3/4",
         f"starving adversary, horizon {HORIZON}; slope in packets/time"]
        + table(
            ["algorithm", "slope@1", "final@1", "slope@3/4", "final@3/4"],
            rows,
        ),
    )
    for name, (at_one, control) in results.items():
        assert at_one.grew_unboundedly, f"{name} did not destabilize at rho=1"
        assert at_one.slope > 5 * max(control.slope, 1e-4)
        assert control.final_backlog < at_one.final_backlog / 2


def test_growth_is_linear_in_horizon(benchmark):
    def run():
        make = _families()["CA-ARRoW (R=2)"][0]
        return {
            horizon: measure_rate_one_instability(
                make(), max_slot_length=2, horizon=horizon
            ).final_backlog
            for horizon in (2000, 4000, 8000)
        }

    growth = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "thm5_linear_growth",
        ["CA-ARRoW backlog at rho = 1 vs horizon (expected ~linear)"]
        + table(["horizon", "final_backlog"], sorted(growth.items())),
    )
    # Growth keeps accruing past any startup transient: each horizon
    # doubling adds a substantial further backlog increment.
    assert growth[4000] >= growth[2000] + 50
    assert growth[8000] >= growth[4000] + 100
