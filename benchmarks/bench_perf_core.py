"""Core perf suite: the tick-lattice timebase must stay fast.

Thin pytest wrapper over :mod:`repro.exec.perf` (the engine behind
``repro bench perf``).  Running this file regenerates
``benchmarks/results/perf_core.{json,txt}`` in the same *full* mode the
committed artifact was produced in, so ``repro bench diff`` stays
meaningful.

Parity (lattice execution == fraction execution, observable-for-
observable) is asserted inside :func:`repro.exec.perf.run_perf` before
any number is reported.  The speedup assertion here is deliberately
looser than the >= 3x measured on a quiet machine: shared CI runners
add noise, and the regression *trajectory* is policed separately by
``repro bench diff --tolerance`` against ``benchmarks/baselines``.
"""

from repro.exec.perf import run_perf, write_report

from .reporting import RESULTS_DIR

#: CI-safe floor; dev machines measure >= 3x (see results/perf_core.txt).
MIN_SPEEDUP = 1.5


def test_perf_core(benchmark):
    document = benchmark.pedantic(run_perf, rounds=1, iterations=1)
    write_report(document, RESULTS_DIR)

    case_table, speedup_table = document["tables"]
    assert case_table["headers"][-1] == "parity"
    assert all(row[-1] == "ok" for row in case_table["rows"])
    assert speedup_table["rows"][0][0] == "geomean"
    for name, cell in document["meta"]["throughput"].items():
        assert cell["speedup"] >= MIN_SPEEDUP, (
            f"{name}: lattice speedup {cell['speedup']}x below "
            f"{MIN_SPEEDUP}x floor"
        )
    assert document["meta"]["geomean_speedup"] >= MIN_SPEEDUP
