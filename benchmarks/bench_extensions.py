"""Extension benches: the paper's §VII open problems, measured.

Not part of the paper's own evaluation — these regenerate the numbers
for the three extensions DESIGN.md commits to (unknown R, randomization,
failures) so EXPERIMENTS.md can report them alongside the core results.

* **Unknown R** — cost of guess-and-double SST vs knowing R.
* **Randomization** — coin-flipping SST vs ABS vs the deterministic
  lower-bound formula (which randomized algorithms may beat).
* **Failures** — plain CA-ARRoW deadlocks on a crash; the
  fault-tolerant variant recovers, collision-free, at a measured
  throughput cost; jamming degrades gracefully with the duty cycle.
"""

import statistics
from fractions import Fraction

from repro.algorithms import (
    ABSLeaderElection,
    CAArrow,
    DoublingABS,
    FaultTolerantCAArrow,
    RandomizedSST,
)
from repro.analysis import abs_slot_upper_bound, sst_lower_bound_slots
from repro.arrivals import UniformRate
from repro.core import Simulator
from repro.faults import PeriodicJammer, crash_fleet
from repro.timing import RandomUniform, worst_case_for

from .reporting import emit, table


def _sst_slots(make_fleet, R, max_events=2_000_000):
    fleet = make_fleet()
    sim = Simulator(fleet, worst_case_for(R), max_slot_length=R)
    end = sim.run_until_success(max_events=max_events)
    assert end is not None
    return sim.max_slots_elapsed()


def test_unknown_r_overhead(benchmark):
    """Slots to SST: ABS(R known) vs DoublingABS(R unknown)."""

    def run():
        rows = []
        for n, R in [(4, 2), (8, 2), (16, 2), (8, 4), (16, 4)]:
            known = _sst_slots(
                lambda: {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}, R
            )
            unknown = _sst_slots(
                lambda: {i: DoublingABS(i, n) for i in range(1, n + 1)}, R
            )
            rows.append((n, R, known, unknown, abs_slot_upper_bound(n, R)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_unknown_r",
        ["Open problem (unknown R): guess-and-double vs known-R ABS",
         "worst-case cyclic schedule; slots of the slowest station"]
        + table(["n", "R", "ABS(R known)", "DoublingABS", "Thm1 bound"], rows),
    )
    for n, R, known, unknown, bound in rows:
        assert known <= bound
        # The doubling scheme stays within a small multiple of the
        # known-R budget on these schedules (often far below: early
        # small-guess epochs are cheap and frequently already win).
        assert unknown <= 4 * bound


def test_randomized_vs_deterministic_sst(benchmark):
    """Randomized SST medians vs ABS vs the Thm-2 formula."""

    def run():
        out = []
        for n, R in [(8, 2), (16, 2), (16, 4), (32, 4)]:
            samples = []
            for seed in range(9):
                fleet = {
                    i: RandomizedSST(i, transmit_probability=1 / n, seed=seed)
                    for i in range(1, n + 1)
                }
                sim = Simulator(fleet, worst_case_for(R), max_slot_length=R)
                assert sim.run_until_success(max_events=1_000_000) is not None
                samples.append(sim.max_slots_elapsed())
            abs_slots = _sst_slots(
                lambda: {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}, R
            )
            out.append(
                (
                    n,
                    R,
                    int(statistics.median(samples)),
                    max(samples),
                    abs_slots,
                    f"{float(sst_lower_bound_slots(n, R)):.1f}",
                )
            )
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_randomized_sst",
        ["Open problem (randomization): coin-flip SST vs deterministic",
         "9 seeds per cell; the Thm-2 formula binds only deterministic algorithms"]
        + table(
            ["n", "R", "rand median", "rand max", "ABS", "det. lower bound"],
            rows,
        ),
    )
    for n, R, median, _max, abs_slots, _lb in rows:
        assert median <= abs_slots  # randomization wins on typical cases


def test_crash_recovery(benchmark):
    """Plain CA-ARRoW vs fault-tolerant CA-ARRoW under a crash."""

    def run_fleet(make, crashes, horizon=8000):
        n, R = 4, 2
        fleet = crash_fleet(
            {i: make(i, n, R) for i in range(1, n + 1)}, crashes
        )
        live = [i for i in range(1, n + 1) if i not in crashes]
        source = UniformRate(rho="2/5", targets=live, assumed_cost=R)
        sim = Simulator(fleet, worst_case_for(R), R, arrival_source=source)
        sim.run(until_time=horizon)
        return (
            len(sim.delivered_packets),
            sim.total_backlog,
            sim.channel.stats.collisions,
        )

    def run():
        return {
            "CA / no crash": run_fleet(CAArrow, {}),
            "CA / crash s2@40": run_fleet(CAArrow, {2: 40}),
            "FT-CA / no crash": run_fleet(FaultTolerantCAArrow, {}),
            "FT-CA / crash s2@40": run_fleet(FaultTolerantCAArrow, {2: 40}),
            "FT-CA / crash s2,s3@40": run_fleet(
                FaultTolerantCAArrow, {2: 40, 3: 40}
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, delivered, backlog, collisions)
        for name, (delivered, backlog, collisions) in results.items()
    ]
    emit(
        "ext_crash_recovery",
        ["Open problem (failures): fail-stop crash of a turn holder",
         "n=4, R=2, rho=2/5 onto live stations, horizon 8000"]
        + table(["configuration", "delivered", "backlog", "collisions"], rows),
    )
    assert results["CA / crash s2@40"][0] < 100            # deadlocked
    assert results["FT-CA / crash s2@40"][0] > 500         # recovered
    assert all(coll == 0 for _, _, coll in results.values())


def test_jamming_degradation(benchmark):
    """Throughput of CA-ARRoW vs jammer duty cycle."""

    def run():
        out = []
        n, R = 3, 2
        for duty_num, duty_den in [(0, 1), (1, 12), (1, 6), (1, 3)]:
            fleet = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
            if duty_num:
                fleet[9] = PeriodicJammer(
                    burst=duty_num, period=duty_den * duty_num
                )
            source = UniformRate(rho="2/5", targets=[1, 2, 3], assumed_cost=R)
            sim = Simulator(fleet, worst_case_for(R), R, arrival_source=source)
            sim.run(until_time=6000)
            out.append(
                (
                    f"{duty_num}/{duty_den * duty_num}" if duty_num else "none",
                    len(sim.delivered_packets),
                    sim.total_backlog,
                    sim.channel.stats.collisions,
                )
            )
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_jamming",
        ["Jamming degradation: CA-ARRoW vs periodic jammer duty cycle",
         "n=3, R=2, rho=2/5, horizon 6000"]
        + table(["jam duty", "delivered", "backlog", "collisions"], rows),
    )
    delivered = [row[1] for row in rows]
    # Monotone-ish degradation with the duty cycle.
    assert delivered[0] >= delivered[-1]
    assert rows[0][3] == 0  # clean run is collision-free
