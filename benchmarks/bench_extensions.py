"""Extension benches: the paper's §VII open problems, measured.

Not part of the paper's own evaluation — these regenerate the numbers
for the three extensions DESIGN.md commits to (unknown R, randomization,
failures) so EXPERIMENTS.md can report them alongside the core results.

* **Unknown R** — cost of guess-and-double SST vs knowing R.
* **Randomization** — coin-flipping SST vs ABS vs the deterministic
  lower-bound formula (which randomized algorithms may beat).
* **Failures** — plain CA-ARRoW deadlocks on a crash; the
  fault-tolerant variant recovers, collision-free, at a measured
  throughput cost; jamming degrades gracefully with the duty cycle.

Every configuration is a :class:`~repro.scenarios.ScenarioSpec` —
crashes and jammers ride in the spec's ``faults`` list, exactly the
form ``repro run --faults`` and ``scenarios/*.json`` files use.
"""

import statistics

from repro.analysis import abs_slot_upper_bound, sst_lower_bound_slots
from repro.scenarios import ScenarioSpec

from .reporting import emit, table


def _sst_slots(spec, max_events=2_000_000):
    sim = spec.build()
    end = sim.run_until_success(max_events=max_events)
    assert end is not None
    return sim.max_slots_elapsed()


def _sst_spec(algorithm, n, R, seed=0):
    return ScenarioSpec(
        algorithm=algorithm, n=n, max_slot=R, schedule="worst", seed=seed
    )


def test_unknown_r_overhead(benchmark):
    """Slots to SST: ABS(R known) vs DoublingABS(R unknown)."""

    def run():
        rows = []
        for n, R in [(4, 2), (8, 2), (16, 2), (8, 4), (16, 4)]:
            known = _sst_slots(_sst_spec("abs", n, R))
            unknown = _sst_slots(_sst_spec("doubling", n, R))
            rows.append((n, R, known, unknown, abs_slot_upper_bound(n, R)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_unknown_r",
        ["Open problem (unknown R): guess-and-double vs known-R ABS",
         "worst-case cyclic schedule; slots of the slowest station"]
        + table(["n", "R", "ABS(R known)", "DoublingABS", "Thm1 bound"], rows),
    )
    for n, R, known, unknown, bound in rows:
        assert known <= bound
        # The doubling scheme stays within a small multiple of the
        # known-R budget on these schedules (often far below: early
        # small-guess epochs are cheap and frequently already win).
        assert unknown <= 4 * bound


def test_randomized_vs_deterministic_sst(benchmark):
    """Randomized SST medians vs ABS vs the Thm-2 formula."""

    def run():
        out = []
        for n, R in [(8, 2), (16, 2), (16, 4), (32, 4)]:
            samples = [
                _sst_slots(_sst_spec("randomized", n, R, seed=seed),
                           max_events=1_000_000)
                for seed in range(9)
            ]
            abs_slots = _sst_slots(_sst_spec("abs", n, R))
            out.append(
                (
                    n,
                    R,
                    int(statistics.median(samples)),
                    max(samples),
                    abs_slots,
                    f"{float(sst_lower_bound_slots(n, R)):.1f}",
                )
            )
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_randomized_sst",
        ["Open problem (randomization): coin-flip SST vs deterministic",
         "9 seeds per cell; the Thm-2 formula binds only deterministic algorithms"]
        + table(
            ["n", "R", "rand median", "rand max", "ABS", "det. lower bound"],
            rows,
        ),
    )
    for n, R, median, _max, abs_slots, _lb in rows:
        assert median <= abs_slots  # randomization wins on typical cases


def test_crash_recovery(benchmark):
    """Plain CA-ARRoW vs fault-tolerant CA-ARRoW under a crash."""

    def run_spec(algorithm, crashes, horizon=8000):
        n, R = 4, 2
        live = [i for i in range(1, n + 1) if i not in crashes]
        spec = ScenarioSpec(
            algorithm=algorithm,
            n=n,
            max_slot=R,
            schedule="worst",
            rho="2/5",
            horizon=horizon,
            source={"name": "uniform", "targets": live},
            faults=[
                {"kind": "crash", "station": station, "at_slot": at_slot}
                for station, at_slot in crashes.items()
            ],
        )
        sim = spec.build()
        sim.run(until_time=spec.horizon)
        return (
            len(sim.delivered_packets),
            sim.total_backlog,
            sim.channel.stats.collisions,
        )

    def run():
        return {
            "CA / no crash": run_spec("ca-arrow", {}),
            "CA / crash s2@40": run_spec("ca-arrow", {2: 40}),
            "FT-CA / no crash": run_spec("ca-arrow-ft", {}),
            "FT-CA / crash s2@40": run_spec("ca-arrow-ft", {2: 40}),
            "FT-CA / crash s2,s3@40": run_spec("ca-arrow-ft", {2: 40, 3: 40}),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, delivered, backlog, collisions)
        for name, (delivered, backlog, collisions) in results.items()
    ]
    emit(
        "ext_crash_recovery",
        ["Open problem (failures): fail-stop crash of a turn holder",
         "n=4, R=2, rho=2/5 onto live stations, horizon 8000"]
        + table(["configuration", "delivered", "backlog", "collisions"], rows),
    )
    assert results["CA / crash s2@40"][0] < 100            # deadlocked
    assert results["FT-CA / crash s2@40"][0] > 500         # recovered
    assert all(coll == 0 for _, _, coll in results.values())


def test_jamming_degradation(benchmark):
    """Throughput of CA-ARRoW vs jammer duty cycle."""

    def run():
        out = []
        n, R = 3, 2
        for duty_num, duty_den in [(0, 1), (1, 12), (1, 6), (1, 3)]:
            faults = ()
            if duty_num:
                faults = (
                    {"kind": "jam-periodic", "station": 9,
                     "burst": duty_num, "period": duty_den * duty_num},
                )
            spec = ScenarioSpec(
                algorithm="ca-arrow", n=n, max_slot=R, schedule="worst",
                rho="2/5", horizon=6000, faults=faults,
            )
            sim = spec.build()
            sim.run(until_time=spec.horizon)
            out.append(
                (
                    f"{duty_num}/{duty_den * duty_num}" if duty_num else "none",
                    len(sim.delivered_packets),
                    sim.total_backlog,
                    sim.channel.stats.collisions,
                )
            )
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_jamming",
        ["Jamming degradation: CA-ARRoW vs periodic jammer duty cycle",
         "n=3, R=2, rho=2/5, horizon 6000"]
        + table(["jam duty", "delivered", "backlog", "collisions"], rows),
    )
    delivered = [row[1] for row in rows]
    # Monotone-ish degradation with the duty cycle.
    assert delivered[0] >= delivered[-1]
    assert rows[0][3] == 0  # clean run is collision-free
